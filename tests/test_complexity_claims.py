"""Direct measurements of the paper's complexity claims.

The abstract promises: O(n/b) space, O(log_b n) insertion/deletion, and
O(h·log_b n + r/b) intersection queries with the backbone height ``h``
independent of ``n``.  These tests measure each claim on the engine rather
than trusting the analysis.
"""

import math

from repro.core import RITree
from repro.engine import Database


def build_tree(n: int, stride: int = 37, length: int = 10) -> RITree:
    """A deterministic database of n intervals over a fixed data space."""
    tree = RITree(Database())
    domain = 2 ** 20
    records = [((i * stride) % domain, (i * stride) % domain + length, i)
               for i in range(n)]
    tree.bulk_load(records)
    tree.db.flush()
    return tree


def test_space_is_linear_in_n():
    """O(n/b): blocks per interval stays constant as n grows 16x."""
    small = build_tree(2000)
    large = build_tree(32_000)
    per_interval_small = small.db.blocks_in_use / 2000
    per_interval_large = large.db.blocks_in_use / 32_000
    assert per_interval_large <= 1.5 * per_interval_small


def test_update_io_is_logarithmic():
    """Insert/delete physical I/O grows like log n, not like n."""
    def update_cost(n):
        tree = build_tree(n)
        tree.db.clear_cache()
        with tree.db.measure() as delta:
            for k in range(50):
                tree.insert(500_000 + k, 500_100 + k, 10_000_000 + k)
        return delta.physical_reads / 50

    cost_small = update_cost(2000)
    cost_large = update_cost(32_000)
    # 16x the data: a linear structure would pay ~16x; a B-tree pays one
    # extra level or two.  Allow 4x to stay robust to cache effects.
    assert cost_large <= 4 * max(cost_small, 1)


def test_backbone_height_independent_of_n():
    """h depends on data-space extent/granularity, never on cardinality.

    The stride is a large prime so every cardinality spreads over the whole
    domain: extent and granularity are fixed while n varies 64-fold.
    """
    heights = set()
    for n in (1000, 4000, 16_000, 64_000):
        tree = build_tree(n, stride=104_729)
        heights.add(tree.height)
    assert len(heights) == 1


def test_backbone_height_tracks_extent_not_cardinality():
    """Growing the extent (same n) grows h; growing n (same extent) not."""
    narrow = build_tree(4000, stride=7)        # extent ~28k
    wide = build_tree(4000, stride=104_729)    # extent ~2^20
    assert wide.height > narrow.height


def test_transient_entries_bounded_by_height():
    """The query generates O(h) index probes regardless of n."""
    for n in (1000, 16_000):
        tree = build_tree(n)
        for query in [(0, 100), (500_000, 540_000), (0, 2 ** 20 - 1)]:
            entries = tree.query_nodes(*query).total_entries
            assert entries <= 2 * tree.height + 3


def test_query_io_linear_in_results():
    """The r/b term: doubling the result size must not quadruple I/O."""
    tree = build_tree(64_000, stride=16, length=8)
    leaf_capacity = tree.table.indexes["upperIndex"].tree.leaf_capacity

    def io_for(width):
        tree.db.clear_cache()
        with tree.db.measure() as delta:
            results = tree.intersection(100_000, 100_000 + width)
        return delta.physical_reads, len(results)

    io_narrow, r_narrow = io_for(5_000)
    io_wide, r_wide = io_for(40_000)
    assert r_wide > 4 * r_narrow
    # I/O grows at most proportionally to results (plus the O(h log n)
    # constant), far from quadratically.
    per_result_narrow = io_narrow / max(r_narrow / leaf_capacity, 1)
    per_result_wide = io_wide / max(r_wide / leaf_capacity, 1)
    assert per_result_wide <= 2 * per_result_narrow + 2


def test_index_height_is_log_b_n():
    """The underlying B+-tree height matches ceil(log_b n) + O(1)."""
    for n in (1000, 32_000):
        tree = build_tree(n)
        index = tree.table.indexes["lowerIndex"].tree
        branching = index.leaf_capacity
        expected = math.ceil(math.log(max(n, 2), branching))
        assert index.height <= expected + 1
