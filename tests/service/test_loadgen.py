"""Load-driver units: seeded generation, canonical forms, aggregates."""

import pytest

from repro.core.stores import create_store
from repro.core.temporal import UPPER_INF, UPPER_NOW
from repro.service.loadgen import (
    DEFAULT_MIX,
    ClassStats,
    LoadResult,
    build_dataset,
    build_ops,
    canonical,
    evaluate_ops,
    percentile,
)


def test_build_dataset_is_deterministic():
    assert build_dataset(seed=3, n=500) == build_dataset(seed=3, n=500)
    assert build_dataset(seed=3, n=500) != build_dataset(seed=4, n=500)


def test_build_dataset_mixes_temporal_sentinels():
    records, now = build_dataset(seed=1, n=1_000, temporal_fraction=0.2)
    uppers = [upper for _, upper, _ in records]
    assert uppers.count(UPPER_INF) == 100
    assert uppers.count(UPPER_NOW) == 100
    assert len(records) == 1_000
    assert len({interval_id for _, _, interval_id in records}) == 1_000
    assert all(lower <= now for lower, upper, _ in records
               if upper == UPPER_NOW)


def test_build_ops_is_deterministic_and_covers_the_mix():
    ops = build_ops(seed=9, count=2_000)
    assert ops == build_ops(seed=9, count=2_000)
    seen = {op["cls"] for op in ops}
    assert seen == set(DEFAULT_MIX)


def test_build_ops_respects_a_custom_mix():
    ops = build_ops(seed=2, count=50, mix={"stab": 1.0})
    assert all(op["op"] == "stab" for op in ops)
    with pytest.raises(ValueError, match="unknown op class"):
        build_ops(seed=2, count=5, mix={"nope": 1.0})


def test_now_ops_straddle_the_clock():
    ops = build_ops(seed=4, count=400, now=7_000,
                    mix={"now": 1.0})
    for op in ops:
        assert op["op"] == "intersection"
        assert op["lower"] <= 7_000 <= op["upper"]


def test_canonical_forms():
    assert canonical("count", 7) == 7
    assert canonical("intersection", [3, 1, 2]) == [1, 2, 3]
    assert canonical("join_pairs", [(2, 9), (1, 5), (2, 3)]) == [
        (1, 5), (2, 3), (2, 9)]


def test_evaluate_ops_matches_store_answers():
    store = create_store("hint")
    store.bulk_load([(0, 10, 1), (5, 15, 2), (20, 30, 3)])
    ops = [
        {"op": "stab", "value": 7, "cls": "stab"},
        {"op": "intersection_count", "lower": 0, "upper": 50,
         "cls": "count"},
        {"op": "query", "lower": 4, "upper": 16, "predicate": "during",
         "cls": "query"},
        {"op": "join_pairs", "probes": [[8, 22, 1]], "cls": "join_pairs"},
    ]
    assert evaluate_ops(store, ops) == [
        [1, 2], 3, [2], [(1, 1), (1, 2), (1, 3)]]
    with pytest.raises(ValueError, match="cannot evaluate"):
        evaluate_ops(store, [{"op": "nope", "cls": "nope"}])


def test_percentile_nearest_rank():
    assert percentile([], 50) == 0.0
    assert percentile([5.0], 99) == 5.0
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 50) == 51
    assert percentile(values, 100) == 100


def test_load_result_serialisation():
    result = LoadResult(
        concurrency=4, ops=10, wall_s=2.0, results=[],
        classes={"stab": ClassStats(count=10, p50_ms=1.0, p99_ms=2.0,
                                    mean_ms=1.2)})
    data = result.as_dict()
    assert data["throughput_ops_s"] == 5.0
    assert data["classes"]["stab"]["p99_ms"] == 2.0
    empty = LoadResult(concurrency=1, ops=0, wall_s=0.0, results=[])
    assert empty.throughput == 0.0
