"""End-to-end service tests: in-process servers plus the CLI roles."""

import asyncio
import json
import os
import pathlib
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.predicates import range_duration
from repro.core.stores import create_store
from repro.core.temporal import UPPER_INF, UPPER_NOW
from repro.service.client import RemoteStore, ServiceClient
from repro.service.loadgen import (
    build_dataset,
    build_ops,
    evaluate_ops,
    run_load,
)
from repro.service.server import IntervalService, _ReadWriteLock

SRC_DIR = pathlib.Path(__file__).resolve().parents[2] / "src"


@contextmanager
def served(store, **service_kwargs):
    """An IntervalService bound on an ephemeral port in a thread."""
    service = IntervalService(store, **service_kwargs)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    address = {}

    async def runner():
        server = await asyncio.start_server(
            service.handle_client, "127.0.0.1", 0)
        address["host"], address["port"] = (
            server.sockets[0].getsockname()[:2])
        ready.set()
        async with server:
            await service.shutdown_requested.wait()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(runner()), daemon=True)
    thread.start()
    assert ready.wait(10), "service failed to start"
    try:
        yield address["host"], address["port"]
    finally:
        loop.call_soon_threadsafe(service.shutdown_requested.set)
        thread.join(10)
        service.close()


@contextmanager
def remote(store, **service_kwargs):
    with served(store, **service_kwargs) as (host, port):
        proxy = RemoteStore.connect(host, port)
        try:
            yield proxy
        finally:
            proxy.close()


def seeded_store(records=(), now=0):
    store = create_store("hint")
    if now:
        store.advance_to(now)
    if records:
        store.bulk_load(records)
    return store


# ----------------------------------------------------------------------
# the RemoteStore contract against a local twin
# ----------------------------------------------------------------------
def test_remote_store_matches_local_store(rng):
    records = []
    for interval_id in range(1, 301):
        lower = rng.randrange(0, 5_000)
        records.append((lower, lower + rng.randrange(0, 200), interval_id))
    local = seeded_store(records)
    with remote(seeded_store(records)) as proxy:
        assert proxy.interval_count == local.interval_count
        assert proxy.index_entry_count == local.index_entry_count
        for lower in (0, 1_000, 2_500, 4_999):
            assert sorted(proxy.stab(lower)) == sorted(local.stab(lower))
            window = (lower, lower + 400)
            assert sorted(proxy.intersection(*window)) == sorted(
                local.intersection(*window))
            assert proxy.intersection_count(*window) == (
                local.intersection_count(*window))
        queries = [(q * 500, q * 500 + 300) for q in range(8)]
        assert [sorted(ids) for ids in proxy.intersection_many(queries)] == [
            sorted(ids) for ids in local.intersection_many(queries)]
        for predicate in ("during", "contains", "overlaps", "before"):
            assert sorted(proxy.query(100, 900, predicate=predicate)) == (
                sorted(local.query(100, 900, predicate=predicate)))
        probes = [(q * 700, q * 700 + 350, q) for q in range(5)]
        assert sorted(proxy.join_pairs(probes)) == sorted(
            local.join_pairs(probes))
        assert proxy.join_count(probes) == local.join_count(probes)
        assert sorted(proxy.stored_records()) == sorted(
            local.stored_records())
        report = proxy.verify()
        assert report.ok
        assert report.backend == local.method_name


def test_remote_store_mutations_roundtrip():
    with remote(seeded_store()) as proxy:
        proxy.insert(5, 9, interval_id=1)
        proxy.extend([(7, 12, 2), (20, 30, 3)])
        assert sorted(proxy.intersection(8, 10)) == [1, 2]
        proxy.delete(7, 12, interval_id=2)
        assert sorted(proxy.intersection(8, 10)) == [1]
        assert proxy.interval_count == 2
        assert proxy.method_name == "remote(HINT)"


def test_remote_temporal_entry_points():
    with remote(seeded_store(now=10)) as proxy:
        assert hasattr(proxy, "insert_infinite")
        proxy.insert_infinite(5, interval_id=1)
        proxy.insert_until_now(8, interval_id=2)
        assert sorted(proxy.intersection(100, 200)) == [1]
        proxy.advance_to(150)
        assert sorted(proxy.intersection(100, 200)) == [1, 2]
        proxy.close_now_interval(8, interval_id=2, upper=120)
        assert sorted(proxy.intersection(130, 200)) == [1]
        proxy.delete_infinite(5, interval_id=1)
        assert proxy.intersection(130, 200) == []
        assert sorted(
            upper for _, upper, _ in proxy.stored_records()) == [120]


def test_remote_sentinels_bulk_load_through_the_wire():
    with remote(seeded_store(now=50)) as proxy:
        proxy.bulk_load([(10, 20, 1), (5, UPPER_INF, 2), (30, UPPER_NOW, 3)])
        assert sorted(proxy.intersection(40, 60)) == [2, 3]
        assert proxy.intersection_count(40, 60) == 2


def test_non_temporal_backend_has_no_temporal_attrs():
    with remote(create_store("ritree")) as proxy:
        assert not hasattr(proxy, "insert_infinite")
        with pytest.raises(AttributeError):
            proxy.advance_to(5)


# ----------------------------------------------------------------------
# error surface
# ----------------------------------------------------------------------
def test_contract_errors_cross_the_wire():
    with remote(seeded_store()) as proxy:
        with pytest.raises(KeyError):
            proxy.delete(1, 2, interval_id=99)
        with pytest.raises(ValueError):
            proxy.insert(9, 3, interval_id=1)


def test_temporal_op_on_plain_backend_is_not_implemented():
    with served(create_store("ritree")) as (host, port):
        with ServiceClient(host, port) as client:
            with pytest.raises(NotImplementedError, match="temporal"):
                client.call("insert_infinite", lower=1, interval_id=1)


def test_unknown_op_and_missing_field_are_value_errors():
    with served(seeded_store()) as (host, port):
        with ServiceClient(host, port) as client:
            with pytest.raises(ValueError, match="unknown op"):
                client.call("frobnicate")
            with pytest.raises(ValueError, match="missing field"):
                client.call("insert", lower=1, upper=2)


def test_errors_do_not_poison_the_connection():
    with served(seeded_store()) as (host, port):
        with ServiceClient(host, port) as client:
            with pytest.raises(ValueError):
                client.call("insert", lower=9, upper=3, interval_id=1)
            client.call("insert", lower=3, upper=9, interval_id=1)
            assert client.call("intersection", lower=4, upper=5) == [1]


# ----------------------------------------------------------------------
# service-level ops: ping / stats / shutdown
# ----------------------------------------------------------------------
def test_ping_stats_and_counters():
    with served(seeded_store([(1, 5, 1)])) as (host, port):
        with ServiceClient(host, port) as client:
            assert client.call("ping") == "pong"
            client.call("stab", value=3)
            client.call("stab", value=3)
            with pytest.raises(ValueError):
                client.call("stab")
            stats = client.call("stats")
    assert stats["store"]["method_name"] == "HINT"
    assert stats["store"]["records"] == 1
    assert stats["routing"] is None
    stab = stats["ops"]["stab"]
    assert stab["count"] == 3
    assert stab["errors"] == 1
    assert sum(stab["histogram_le_2e_us"].values()) == 3
    assert stats["connections"]["total"] == 1


def test_shutdown_op_stops_the_server():
    with served(seeded_store()) as (host, port):
        with ServiceClient(host, port) as client:
            assert client.call("shutdown") is True
        deadline = time.time() + 5
        while time.time() < deadline:
            try:
                ServiceClient(host, port).close()
            except OSError:
                break
            time.sleep(0.05)


# ----------------------------------------------------------------------
# the readers-writer lock
# ----------------------------------------------------------------------
def test_rw_lock_try_read_fails_under_writer():
    lock = _ReadWriteLock()
    with lock.write():
        assert lock.try_read() is False
    assert lock.try_read() is True
    lock.release_read()


def test_rw_lock_waiting_writer_blocks_new_readers():
    lock = _ReadWriteLock()
    entered = threading.Event()
    release = threading.Event()

    def reader():
        with lock.read():
            entered.set()
            release.wait(10)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    assert entered.wait(5)
    writer = threading.Thread(target=lambda: lock.write().__enter__(),
                              daemon=True)
    writer.start()
    deadline = time.time() + 5
    while lock._waiting_writers == 0 and time.time() < deadline:
        time.sleep(0.01)
    assert lock.try_read() is False, "a waiting writer must block readers"
    release.set()
    thread.join(5)


def test_concurrent_readers_and_writers_stay_consistent():
    with served(seeded_store(), max_workers=8) as (host, port):
        errors = []

        def writer(base):
            try:
                with ServiceClient(host, port) as client:
                    for i in range(25):
                        client.call("insert", lower=base + i,
                                    upper=base + i + 10,
                                    interval_id=base + i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            try:
                with ServiceClient(host, port) as client:
                    for _ in range(40):
                        client.call("intersection", lower=0, upper=10_000)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(base,))
                   for base in (1_000, 2_000)]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors
        with ServiceClient(host, port) as client:
            assert client.call("info")["records"] == 50


# ----------------------------------------------------------------------
# the CLI roles: shard server and router server
# ----------------------------------------------------------------------
def spawn_cli(tmp_path, records, now, extra):
    dataset = tmp_path / "dataset.json"
    dataset.write_text(json.dumps({"records": records, "now": now}))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + [p for p in env.get("PYTHONPATH", "").split(
            os.pathsep) if p])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--dataset", str(dataset)] + extra,
        stdout=subprocess.PIPE, text=True, env=env)
    line = proc.stdout.readline().strip()
    assert line.startswith("LISTENING "), line
    _, host, port = line.split()
    return proc, host, int(port)


@pytest.mark.parametrize("shards", [1, 2])
def test_cli_roles_match_the_local_oracle(tmp_path, shards):
    records, now = build_dataset(seed=5, n=400, domain=8_000, max_len=300)
    ops = build_ops(seed=6, count=150, domain=8_000, max_len=300, now=now)
    oracle = seeded_store(records, now=now)
    expected = evaluate_ops(oracle, ops)
    proc, host, port = spawn_cli(
        tmp_path, records, now, ["--shards", str(shards)])
    try:
        result = run_load(host, port, ops, concurrency=4)
        assert result.results == expected
        assert result.ops == len(ops)
        assert set(result.classes) <= set(
            op["cls"] for op in ops)
        with ServiceClient(host, port) as client:
            stats = client.call("stats")
            client.call("shutdown")
        if shards == 1:
            assert stats["routing"] is None
        else:
            routing = stats["routing"]
            assert routing["shard_count"] == shards
            assert routing["records"] == len(records)
            # The relay path must feed the per-shard query counters.
            assert sum(s["queries"] for s in routing["shards"]) > 0
    finally:
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            raise


def test_router_cli_serves_writes_and_temporal_rows(tmp_path):
    records = [(100, 900, 1), (950, 1_050, 2), (1_500, 2_400, 3),
               (2_500, 3_500, 4)]
    proc, host, port = spawn_cli(
        tmp_path, records, 0, ["--shards", "2", "--now", "60"])
    try:
        proxy = RemoteStore.connect(host, port)
        assert proxy.method_name.startswith("remote(sharded[2]")
        proxy.insert(900, 1_600, interval_id=5)
        proxy.insert_until_now(40, interval_id=6)
        assert sorted(proxy.intersection(0, 4_000)) == [1, 2, 3, 4, 5, 6]
        assert proxy.intersection_count(0, 4_000) == 6
        proxy.advance_to(2_000)
        assert sorted(proxy.stab(1_990)) == [3, 6]
        report = proxy.verify()
        assert report.ok, report.issues
        proxy.shutdown()
    finally:
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            raise


def test_query_families_travel_the_wire():
    records = [(i * 40, i * 40 + (15 if i % 3 else 700), i) for i in range(120)]
    local = seeded_store(records)
    with remote(seeded_store(records)) as proxy:
        for dmin, dmax in [(0, 30), (100, 900), (400, None)]:
            pred = range_duration(dmin, dmax)
            assert sorted(proxy.query(0, 5_000, predicate=pred)) == sorted(
                local.query(0, 5_000, predicate=pred)
            )
        # The parameter bundle rides the join ops too.
        probes = [(q * 350, q * 350 + 200, q) for q in range(6)]
        pred = range_duration(0, 100)
        assert sorted(proxy.join_pairs(probes, predicate=pred)) == sorted(
            local.join_pairs(probes, predicate=pred)
        )
        assert proxy.join_count(probes, predicate=pred) == local.join_count(
            probes, predicate=pred
        )


def test_sharded_service_routes_family_queries():
    records = [(i * 25, i * 25 + 60 + i % 5, i) for i in range(200)]
    local = create_store("sharded", backend="hint", cuts=[2_000, 4_000])
    local.bulk_load(records)
    mirror = create_store("sharded", backend="hint", cuts=[2_000, 4_000])
    mirror.bulk_load(records)
    with remote(mirror) as proxy:
        pred = range_duration(50, 70)
        assert sorted(proxy.query(0, 6_000, predicate=pred)) == sorted(
            local.query(0, 6_000, predicate=pred)
        )
        routing = proxy.stats()["routing"]
        assert sum(s["predicate_queries"] for s in routing["shards"]) >= 1
