"""Frame protocol: framing, decoding, and error round-tripping."""

import io
import struct

import pytest

from repro.core.temporal import UPPER_INF, UPPER_NOW
from repro.service.protocol import (
    HEADER,
    MAX_FRAME_BYTES,
    ProtocolError,
    ServiceError,
    decode_payload,
    encode_frame,
    error_response,
    raise_for_response,
    read_frame,
    write_frame,
)


class _Stream(io.BytesIO):
    """A BytesIO that also answers flush() like a socket makefile."""


def roundtrip(message):
    stream = _Stream()
    write_frame(stream, message)
    stream.seek(0)
    return read_frame(stream)


def test_frame_roundtrip():
    message = {"id": 7, "op": "intersection", "lower": 3, "upper": 9}
    assert roundtrip(message) == message


def test_sentinel_bounds_survive_the_wire():
    message = {"id": 1, "records": [[5, UPPER_INF, 1], [2, UPPER_NOW, 2]]}
    out = roundtrip(message)
    assert out["records"][0][1] == UPPER_INF
    assert out["records"][1][1] == UPPER_NOW


def test_clean_eof_reads_none():
    assert read_frame(_Stream()) is None


def test_truncated_header_is_a_protocol_error():
    with pytest.raises(ProtocolError, match="mid-header"):
        read_frame(_Stream(b"\x00\x00"))


def test_truncated_payload_is_a_protocol_error():
    stream = _Stream(HEADER.pack(10) + b"short")
    with pytest.raises(ProtocolError, match="mid-frame"):
        read_frame(stream)


def test_oversized_header_is_rejected_before_allocation():
    stream = _Stream(HEADER.pack(MAX_FRAME_BYTES + 1))
    with pytest.raises(ProtocolError, match="frame limit"):
        read_frame(stream)


def test_oversized_outgoing_frame_is_rejected():
    with pytest.raises(ProtocolError, match="frame limit"):
        encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})


def test_non_json_payload_is_a_protocol_error():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_payload(b"\xff\xfe not json")


def test_non_object_payload_is_a_protocol_error():
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_payload(b"[1, 2, 3]")


def test_header_is_four_byte_big_endian():
    frame = encode_frame({"id": 1})
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4


def test_success_response_returns_result():
    assert raise_for_response({"id": 1, "ok": True, "result": [4, 5]}) == [4, 5]


@pytest.mark.parametrize("name, exc_class", [
    ("KeyError", KeyError),
    ("ValueError", ValueError),
    ("TypeError", TypeError),
    ("NotImplementedError", NotImplementedError),
])
def test_contract_errors_roundtrip_by_type(name, exc_class):
    response = error_response(3, exc_class("boom"))
    assert response["ok"] is False
    assert response["error_type"] == name
    with pytest.raises(exc_class):
        raise_for_response(response)


def test_unknown_error_types_degrade_to_service_error():
    response = error_response(3, RuntimeError("weird"))
    with pytest.raises(ServiceError, match="RuntimeError"):
        raise_for_response(response)
