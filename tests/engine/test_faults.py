"""Fault injector, torn pages and the bounded retry policy."""

from __future__ import annotations

import pytest

from repro.engine import (
    Database,
    FaultInjector,
    PermanentIOError,
    RetryExhaustedError,
    RetryPolicy,
    SimulatedCrash,
    TornPageError,
    TransientError,
    TransientIOError,
    default_classify,
)


def loaded_db(**kwargs) -> tuple[Database, object]:
    db = Database(block_size=512, cache_blocks=16, **kwargs)
    table = db.create_table("T", ["a", "b"])
    table.create_index("ia", ["a"])
    for i in range(200):
        table.insert((i, 2 * i))
    return db, table


# ----------------------------------------------------------------------
# scheduled faults
# ----------------------------------------------------------------------
def test_nth_read_fails_transiently_without_retry():
    injector = FaultInjector().fail_read(1, kind="transient")
    db, table = loaded_db(injector=injector)
    db.clear_cache()
    with pytest.raises(TransientIOError):
        table.fetch(0)
    assert injector.faults_injected == 1
    # The fault plan is one-shot: the same read succeeds afterwards.
    assert table.fetch(0) == (0, 0)


def test_nth_read_retried_under_policy():
    injector = FaultInjector().fail_read(1, kind="transient")
    retry = RetryPolicy(attempts=3)
    db, table = loaded_db(injector=injector, retry=retry)
    db.clear_cache()
    assert table.fetch(0) == (0, 0)
    assert retry.total_retries == 1
    assert retry.simulated_backoff > 0


def test_permanent_fault_is_not_retried():
    injector = FaultInjector().fail_read(1, kind="permanent")
    retry = RetryPolicy(attempts=5)
    db, table = loaded_db(injector=injector, retry=retry)
    db.clear_cache()
    with pytest.raises(PermanentIOError):
        table.fetch(0)
    assert retry.total_retries == 0


def test_write_faults_by_ordinal():
    injector = FaultInjector().fail_write(1, kind="transient")
    db = Database(block_size=512, cache_blocks=16, injector=injector)
    table = db.create_table("T", ["a"])
    table.insert((1,))
    with pytest.raises(TransientIOError):
        db.flush()
    assert injector.faults_injected == 1


# ----------------------------------------------------------------------
# torn pages
# ----------------------------------------------------------------------
def test_torn_write_persists_half_and_read_raises():
    injector = FaultInjector()
    db, table = loaded_db(injector=injector)
    injector.tear_write(injector.writes + 1)
    db.flush()  # first dirty write-back is torn
    (torn_block,) = db.disk.torn_blocks
    reads_before = db.stats.physical_reads
    with pytest.raises(TornPageError):
        db.disk.read(torn_block)
    # The attempted read is still accounted before the error surfaces.
    assert db.stats.physical_reads == reads_before + 1


def test_torn_block_heals_on_rewrite():
    injector = FaultInjector()
    db = Database(block_size=512, cache_blocks=16, injector=injector)
    table = db.create_table("T", ["a"])
    table.insert((7,))
    injector.tear_write(injector.writes + 1)
    db.flush()
    (torn_block,) = db.disk.torn_blocks
    with pytest.raises(TornPageError):
        db.disk.read(torn_block)
    # A full rewrite of the same block clears the torn marker.
    db.pool.flush_block(torn_block)  # not dirty: no-op
    table.insert((8,))
    db.flush()
    assert torn_block not in db.disk.torn_blocks
    db.pool.clear()
    assert sorted(row for _, row in table.scan()) == [(7,), (8,)]


# ----------------------------------------------------------------------
# crash points
# ----------------------------------------------------------------------
def test_write_points_span_writes_and_flushes():
    injector = FaultInjector()
    db, _table = loaded_db(injector=injector)
    db.flush()
    # Every flush announcement and every disk write is one crash point.
    assert injector.write_points == injector.writes + injector.flushes
    assert injector.flushes > 0


def test_crash_at_write_point_raises_once():
    passive = FaultInjector()
    db, _ = loaded_db(injector=passive)
    db.flush()
    points = passive.write_points
    assert points > 0
    injector = FaultInjector().crash_at_write_point(1)
    with pytest.raises(SimulatedCrash):
        loaded_db(injector=injector)[0].flush()


def test_crash_is_never_retried():
    injector = FaultInjector().crash_at_write_point(1)
    retry = RetryPolicy(attempts=10)
    db = Database(block_size=512, cache_blocks=16, injector=injector, retry=retry)
    table = db.create_table("T", ["a"])
    table.insert((1,))
    with pytest.raises(SimulatedCrash):
        db.flush()
    assert retry.total_retries == 0


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_random_faults_are_seed_deterministic():
    def run(seed: int) -> list[int]:
        injector = FaultInjector(seed=seed).random_faults(read_rate=0.3)
        db, table = loaded_db(injector=injector)
        db.clear_cache()
        outcomes = []
        for i in range(50):
            try:
                table.fetch(i)
                outcomes.append(0)
            except TransientError:
                outcomes.append(1)
        return outcomes

    assert run(7) == run(7)
    assert run(7) != run(8)


# ----------------------------------------------------------------------
# the retry policy in isolation
# ----------------------------------------------------------------------
def test_retry_exhaustion_is_typed():
    policy = RetryPolicy(attempts=3)
    calls = []

    def always_fails():
        calls.append(1)
        raise TransientIOError("nope")

    with pytest.raises(RetryExhaustedError):
        policy.call(always_fails)
    assert len(calls) == 3
    assert policy.total_retries == 2


def test_retry_backoff_schedule_is_exponential_and_capped():
    policy = RetryPolicy(attempts=5, base_delay=0.01, multiplier=2.0, max_delay=0.03)
    assert policy.delay_for(1) == pytest.approx(0.01)
    assert policy.delay_for(2) == pytest.approx(0.02)
    assert policy.delay_for(3) == pytest.approx(0.03)
    assert policy.delay_for(4) == pytest.approx(0.03)


def test_retry_passes_nontransient_through():
    policy = RetryPolicy(attempts=3)
    with pytest.raises(KeyError):
        policy.call(lambda: (_ for _ in ()).throw(KeyError("x")))
    assert policy.total_retries == 0


def test_default_classify_is_the_typed_taxonomy():
    assert default_classify(TransientIOError("x"))
    assert not default_classify(PermanentIOError("x"))
    assert not default_classify(ValueError("x"))
