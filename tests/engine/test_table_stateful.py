"""Stateful property test: a Table with two indexes vs a Python model."""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.engine import Database

row_strategy = st.tuples(st.integers(-500, 500), st.integers(-500, 500),
                         st.integers(0, 10_000))


class TableMachine(RuleBasedStateMachine):
    """Random inserts/deletes/scans with full-model comparison."""

    def __init__(self):
        super().__init__()
        db = Database(block_size=512, cache_blocks=16)
        self.table = db.create_table("T", ["a", "b", "c"])
        self.table.create_index("ia", ["a"])
        self.table.create_index("iab", ["a", "b"])
        self.model: dict[int, tuple[int, int, int]] = {}

    @rule(row=row_strategy)
    def insert(self, row):
        rowid = self.table.insert(row)
        assert rowid not in self.model
        self.model[rowid] = row

    @rule(data=st.data())
    def delete_random(self, data):
        if not self.model:
            return
        rowid = data.draw(st.sampled_from(sorted(self.model)))
        deleted = self.table.delete(rowid)
        assert deleted == self.model.pop(rowid)

    @rule(lo=st.integers(-600, 600), hi=st.integers(-600, 600))
    def index_scan_matches(self, lo, hi):
        got = [(entry[0], entry[1]) for entry in
               self.table.index_scan("ia", (lo,), (hi,))]
        expected = sorted((row[0], rowid)
                          for rowid, row in self.model.items()
                          if lo <= row[0] <= hi)
        assert got == expected

    @rule()
    def full_scan_matches(self):
        got = sorted(self.table.scan())
        expected = sorted(self.model.items())
        assert got == expected

    @invariant()
    def counts_agree(self):
        assert self.table.row_count == len(self.model)
        for index in self.table.indexes.values():
            assert len(index.tree) == len(self.model)


TestTableStateful = TableMachine.TestCase
TestTableStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
