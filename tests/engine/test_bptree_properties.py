"""Property-based tests: the B+-tree behaves as a sorted set of tuples."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.engine.bptree import BPlusTree
from repro.engine.buffer import BufferPool
from repro.engine.storage import DiskManager

entry_strategy = st.tuples(st.integers(-1000, 1000), st.integers(0, 10_000))


def fresh_tree(block_size: int = 256) -> BPlusTree:
    disk = DiskManager(block_size=block_size)
    pool = BufferPool(disk, capacity=16)
    return BPlusTree(pool, arity=2)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sets(entry_strategy, max_size=300))
def test_insert_scan_equals_sorted_set(entries):
    tree = fresh_tree()
    for entry in entries:
        tree.insert(entry)
    assert list(tree.scan_all()) == sorted(entries)
    tree.check_invariants()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sets(entry_strategy, min_size=1, max_size=300), st.data())
def test_delete_subset_equals_set_difference(entries, data):
    tree = fresh_tree()
    for entry in entries:
        tree.insert(entry)
    victims = data.draw(st.sets(st.sampled_from(sorted(entries)),
                                max_size=len(entries)))
    for victim in victims:
        tree.delete(victim)
    assert list(tree.scan_all()) == sorted(entries - victims)
    tree.check_invariants()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sets(entry_strategy, max_size=300),
       st.tuples(st.integers(-1100, 1100)),
       st.tuples(st.integers(-1100, 1100)))
def test_range_scan_equals_filtered_sort(entries, lo, hi):
    tree = fresh_tree()
    tree.bulk_load(sorted(entries))
    got = list(tree.scan_range(lo, hi))
    expected = [e for e in sorted(entries) if lo[0] <= e[0] <= hi[0]]
    assert got == expected


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sets(entry_strategy, max_size=250), entry_strategy)
def test_last_le_equals_max_of_filtered(entries, probe):
    tree = fresh_tree()
    tree.bulk_load(sorted(entries))
    candidates = [e for e in entries if e <= probe]
    expected = max(candidates) if candidates else None
    assert tree.last_le(probe) == expected


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sets(entry_strategy, max_size=400), st.floats(0.7, 1.0))
def test_bulk_load_any_fill_factor(entries, fill):
    tree = fresh_tree()
    tree.bulk_load(sorted(entries), fill=fill)
    assert list(tree.scan_all()) == sorted(entries)
    tree.check_invariants()


class BPlusTreeMachine(RuleBasedStateMachine):
    """Stateful comparison against a Python set."""

    def __init__(self):
        super().__init__()
        self.tree = fresh_tree()
        self.model: set[tuple[int, int]] = set()

    @rule(entry=entry_strategy)
    def insert(self, entry):
        if entry in self.model:
            return
        self.tree.insert(entry)
        self.model.add(entry)

    @rule(entry=entry_strategy)
    def delete_if_present(self, entry):
        if entry in self.model:
            self.tree.delete(entry)
            self.model.remove(entry)

    @rule(lo=st.integers(-1100, 1100), hi=st.integers(-1100, 1100))
    def range_scan(self, lo, hi):
        got = list(self.tree.scan_range((lo,), (hi,)))
        expected = sorted(e for e in self.model if lo <= e[0] <= hi)
        assert got == expected

    @rule(entry=entry_strategy)
    def membership(self, entry):
        assert self.tree.contains(entry) == (entry in self.model)

    @invariant()
    def count_matches(self):
        assert len(self.tree) == len(self.model)


TestBPlusTreeStateful = BPlusTreeMachine.TestCase
TestBPlusTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
