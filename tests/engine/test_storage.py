"""Unit tests for the simulated disk."""

import pytest

from repro.engine.errors import BlockError
from repro.engine.storage import DiskManager


def test_allocate_write_read_roundtrip():
    disk = DiskManager(block_size=128)
    block = disk.allocate()
    disk.write(block, b"hello")
    assert disk.read(block) == b"hello"


def test_read_counts_physical_reads():
    disk = DiskManager(block_size=128)
    block = disk.allocate()
    disk.write(block, b"x")
    before = disk.stats.physical_reads
    disk.read(block)
    disk.read(block)
    assert disk.stats.physical_reads == before + 2


def test_write_counts_physical_writes():
    disk = DiskManager(block_size=128)
    block = disk.allocate()
    before = disk.stats.physical_writes
    disk.write(block, b"a")
    disk.write(block, b"b")
    assert disk.stats.physical_writes == before + 2


def test_read_before_write_rejected():
    disk = DiskManager(block_size=128)
    block = disk.allocate()
    with pytest.raises(BlockError):
        disk.read(block)


def test_oversized_page_rejected():
    disk = DiskManager(block_size=64)
    block = disk.allocate()
    with pytest.raises(BlockError):
        disk.write(block, b"z" * 65)


def test_invalid_block_id_rejected():
    disk = DiskManager(block_size=128)
    with pytest.raises(BlockError):
        disk.read(42)
    with pytest.raises(BlockError):
        disk.write(-1, b"x")


def test_free_recycles_ids_and_space_accounting():
    disk = DiskManager(block_size=128)
    a = disk.allocate()
    b = disk.allocate()
    assert disk.blocks_in_use == 2
    disk.free(a)
    assert disk.blocks_in_use == 1
    c = disk.allocate()
    assert c == a  # recycled
    assert disk.blocks_in_use == 2
    assert b != c


def test_double_free_rejected():
    disk = DiskManager(block_size=128)
    block = disk.allocate()
    disk.free(block)
    with pytest.raises(BlockError):
        disk.free(block)


def test_access_to_freed_block_rejected():
    disk = DiskManager(block_size=128)
    block = disk.allocate()
    disk.write(block, b"x")
    disk.free(block)
    with pytest.raises(BlockError):
        disk.read(block)


def test_allocation_counter_tracks_in_use():
    disk = DiskManager(block_size=128)
    blocks = [disk.allocate() for _ in range(5)]
    assert disk.stats.blocks_allocated == 5
    disk.free(blocks[0])
    assert disk.stats.blocks_allocated == 4


def test_tiny_block_size_rejected():
    with pytest.raises(BlockError):
        DiskManager(block_size=16)
