"""Unit tests for heap files."""

import pytest

from repro.engine.buffer import BufferPool
from repro.engine.errors import BlockError, SchemaError
from repro.engine.heap import HeapFile
from repro.engine.storage import DiskManager


def make_heap(arity: int = 3, block_size: int = 256) -> HeapFile:
    disk = DiskManager(block_size=block_size)
    pool = BufferPool(disk, capacity=16)
    return HeapFile(pool, arity=arity)


def test_insert_fetch_roundtrip():
    heap = make_heap()
    rowid = heap.insert((1, 2, 3))
    assert heap.fetch(rowid) == (1, 2, 3)
    assert heap.row_count == 1


def test_rowids_are_stable_across_growth():
    heap = make_heap()
    rowids = [heap.insert((i, i, i)) for i in range(500)]
    for i, rowid in enumerate(rowids):
        assert heap.fetch(rowid) == (i, i, i)


def test_delete_returns_row_and_frees_slot():
    heap = make_heap()
    rowid = heap.insert((9, 9, 9))
    assert heap.delete(rowid) == (9, 9, 9)
    assert heap.row_count == 0
    with pytest.raises(BlockError):
        heap.fetch(rowid)


def test_deleted_slot_is_reused():
    heap = make_heap()
    rowids = [heap.insert((i, 0, 0)) for i in range(100)]
    heap.delete(rowids[3])
    pages_before = heap.page_count
    new_rowid = heap.insert((777, 0, 0))
    assert heap.page_count == pages_before  # no new page
    assert heap.fetch(new_rowid) == (777, 0, 0)


def test_double_delete_rejected():
    heap = make_heap()
    rowid = heap.insert((1, 1, 1))
    heap.delete(rowid)
    with pytest.raises(BlockError):
        heap.delete(rowid)


def test_invalid_rowid_rejected():
    heap = make_heap()
    with pytest.raises(BlockError):
        heap.fetch(123456)


def test_wrong_arity_rejected():
    heap = make_heap(arity=2)
    with pytest.raises(SchemaError):
        heap.insert((1, 2, 3))


def test_scan_yields_live_rows_in_storage_order():
    heap = make_heap()
    rowids = [heap.insert((i, 0, 0)) for i in range(50)]
    for rowid in rowids[::2]:
        heap.delete(rowid)
    scanned = list(heap.scan())
    assert [row[0] for _, row in scanned] == list(range(1, 50, 2))
    assert all(rowid == expected for (rowid, _), expected
               in zip(scanned, rowids[1::2]))


def test_bulk_append_matches_inserts():
    heap = make_heap()
    rows = [(i, i * 2, i * 3) for i in range(300)]
    rowids = heap.bulk_append(rows)
    assert heap.row_count == 300
    for rowid, row in zip(rowids, rows):
        assert heap.fetch(rowid) == row


def test_bulk_append_then_insert_fills_last_page():
    heap = make_heap()
    heap.bulk_append([(1, 1, 1)])  # partially filled page
    pages = heap.page_count
    heap.insert((2, 2, 2))
    assert heap.page_count == pages


def test_negative_values_roundtrip():
    heap = make_heap()
    rowid = heap.insert((-5, -(2 ** 62), 0))
    assert heap.fetch(rowid) == (-5, -(2 ** 62), 0)


def test_page_count_linear_in_rows():
    heap = make_heap(arity=3, block_size=256)
    for i in range(400):
        heap.insert((i, i, i))
    per_page = heap.slots_per_page
    assert heap.page_count == -(-400 // per_page)
