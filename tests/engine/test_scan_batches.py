"""Batched scan pipeline: leaf-slice scans, reader fast path, fetch_many.

The contract under test is the one the RI-tree's I/O claims rest on:
``scan_batches`` must return exactly what the per-entry ``scan_range``
returns, with an identical logical/physical I/O trace, while the buffer
pool's pre-bound readers keep the same accounting as ``BufferPool.get``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database
from repro.engine.bptree import BPlusTree, coalesce_ranges, next_key
from repro.engine.buffer import BufferPool
from repro.engine.errors import BlockError
from repro.engine.serial import INT_MAX, INT_MIN, pad_high, pad_low
from repro.engine.storage import DiskManager


def _build_tree(db, entries):
    tree = BPlusTree(db.pool, arity=2, name="t")
    for entry in sorted(entries):
        tree.insert(entry)
    return tree


# ----------------------------------------------------------------------
# scan parity (the property the whole pipeline rests on)
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.data())
def test_scan_batches_matches_scan_range(data):
    keys = data.draw(st.sets(
        st.tuples(st.integers(-200, 200), st.integers(0, 50)),
        max_size=300))
    db = Database(block_size=256, cache_blocks=16)
    tree = _build_tree(db, keys)
    for _ in range(5):
        lo = data.draw(st.one_of(
            st.just(()), st.tuples(st.integers(-220, 220)),
            st.tuples(st.integers(-220, 220), st.integers(-5, 55))))
        hi = data.draw(st.one_of(
            st.just(()), st.tuples(st.integers(-220, 220)),
            st.tuples(st.integers(-220, 220), st.integers(-5, 55))))
        per_entry = list(tree.scan_range(lo, hi))
        batched = [e for batch in tree.scan_batches(lo, hi) for e in batch]
        expected = [e for e in sorted(keys)
                    if pad_low(lo, 2) <= e <= pad_high(hi, 2)]
        assert batched == per_entry == expected


def test_scan_batches_io_identical_to_unbatched_reference(rng):
    """Batched scans vs the retained pre-batching reference execution.

    ``scan_range`` is a wrapper over ``scan_batches``, so the genuinely
    independent comparison is against ``scan_range_unbatched`` -- the
    seed implementation kept verbatim for exactly this purpose.
    """
    db = Database(block_size=256, cache_blocks=16)
    entries = {(rng.randrange(5000), i) for i in range(2000)}
    tree = _build_tree(db, entries)
    for lo, hi in [((), ()), ((100,), (4000,)), ((2500,), (2500,)),
                   ((4999,), ()), ((), (3,)), ((9000,), ())]:
        db.clear_cache()
        before = db.stats.snapshot()
        a = list(tree.scan_range_unbatched(lo, hi))
        mid = db.stats.snapshot()
        b = [e for batch in tree.scan_batches(lo, hi) for e in batch]
        after = db.stats.snapshot()
        assert a == b == list(tree.scan_range(lo, hi))
        assert tree.count_range(lo, hi) == len(a)
        per_entry_io = mid - before
        batched_io = after - mid
        assert per_entry_io.logical_reads == batched_io.logical_reads
        # The second pass runs warm, so only the logical trace is
        # comparable here; cold-vs-cold equality is checked below.
        db.clear_cache()
        cold_a = db.stats.snapshot()
        list(tree.scan_range_unbatched(lo, hi))
        cold_b = db.stats.snapshot()
        db.clear_cache()
        cold_c = db.stats.snapshot()
        list(tree.scan_batches(lo, hi))
        cold_d = db.stats.snapshot()
        assert (cold_b - cold_a).physical_reads == \
            (cold_d - cold_c).physical_reads
        assert (cold_b - cold_a).logical_reads == \
            (cold_d - cold_c).logical_reads


def test_scan_batches_yields_leaf_slices(rng):
    db = Database(block_size=256, cache_blocks=32)
    tree = _build_tree(db, {(i, 0) for i in range(500)})
    batches = list(tree.scan_batches((10,), (480,)))
    assert all(batches), "no empty batches"
    assert all(len(batch) <= tree.leaf_capacity for batch in batches)
    flat = [e for batch in batches for e in batch]
    assert flat == sorted(flat)
    # Interior batches are whole leaves; only the boundaries are partial.
    assert sum(len(b) for b in batches) == 471


def test_scan_batches_empty_cases():
    db = Database(block_size=256, cache_blocks=16)
    tree = BPlusTree(db.pool, arity=2, name="t")
    assert list(tree.scan_batches((), ())) == []
    tree.insert((5, 5))
    assert list(tree.scan_batches((9,), (1,))) == []
    assert list(tree.scan_batches((6,), ())) == []


# ----------------------------------------------------------------------
# pin/evict edge cases under the reader fast path
# ----------------------------------------------------------------------
def test_scan_survives_dirty_eviction_mid_batch(rng):
    """Batches already yielded stay valid while eviction churns the pool."""
    db = Database(block_size=256, cache_blocks=8)
    tree = _build_tree(db, {(i, 0) for i in range(400)})
    other = BPlusTree(db.pool, arity=2, name="churn")
    scan = tree.scan_batches((), ())
    collected = []
    for i, batch in enumerate(scan):
        collected.extend(batch)
        # Dirty and evict pages between batch pulls: inserts into a second
        # tree churn the 8-frame pool, writing dirty leaves back mid-scan.
        for j in range(4):
            other.insert((1000 * i + j, 1))
    assert collected == [(i, 0) for i in range(400)]
    tree.check_invariants()
    other.check_invariants()


def test_scan_with_pinned_boundary_leaf():
    """A pinned boundary leaf is served from cache and never evicted."""
    db = Database(block_size=256, cache_blocks=8)
    tree = _build_tree(db, {(i, 0) for i in range(400)})
    lo = pad_low((37,), 2)
    boundary_leaf = tree._descend(lo)[-1][0]
    db.pool.pin(boundary_leaf)
    try:
        churn = BPlusTree(db.pool, arity=2, name="churn")
        for j in range(40):
            churn.insert((j, 0))
        assert db.pool.is_resident(boundary_leaf)
        flat = [e for b in tree.scan_batches((37,), (60,)) for e in b]
        assert flat == [(i, 0) for i in range(37, 61)]
        assert db.pool.is_resident(boundary_leaf)
    finally:
        db.pool.unpin(boundary_leaf)


def test_make_reader_accounting_matches_get():
    disk = DiskManager(block_size=256)
    pool = BufferPool(disk, capacity=8)

    class Page:
        def __init__(self, data):
            self.data = bytes(data)

        def to_bytes(self):
            return self.data

    ids = [disk.allocate() for _ in range(12)]
    for block_id in ids:
        disk.write(block_id, bytes([block_id % 251]) * 4)
    read = pool.make_reader(Page)
    before = pool.stats.snapshot()
    for block_id in ids:                       # 12 misses
        assert read(block_id).data == disk.read(block_id)
    misses = pool.stats.snapshot()
    # disk.read above also counts physical reads; only compare logical.
    assert misses.logical_reads - before.logical_reads == 12
    resident = [b for b in ids if pool.is_resident(b)]
    assert len(resident) == 8
    hits_before = pool.stats.snapshot()
    for block_id in resident:                  # pure hits
        read(block_id)
    hits_after = pool.stats.snapshot()
    assert hits_after.logical_reads - hits_before.logical_reads == len(resident)
    assert hits_after.physical_reads == hits_before.physical_reads


def test_make_reader_survives_cache_clear():
    db = Database(block_size=256, cache_blocks=8)
    tree = _build_tree(db, {(i, 0) for i in range(100)})
    db.clear_cache()
    assert [e for b in tree.scan_batches((), ()) for e in b] == \
        [(i, 0) for i in range(100)]


# ----------------------------------------------------------------------
# heap fetch_many
# ----------------------------------------------------------------------
def test_fetch_many_parity_and_page_grouping(db, rng):
    table = db.create_table("rows", ["a", "b"])
    rowids = [table.insert((i, i * i)) for i in range(300)]
    picked = rng.sample(rowids, 120)
    assert table.fetch_many(picked) == [table.fetch(r) for r in picked]
    # Index-ordered rowids cluster by page: grouped fetch does one logical
    # read per page run, a per-row loop does one per row.
    ordered = sorted(rowids)
    before = db.stats.snapshot()
    table.fetch_many(ordered)
    grouped = db.stats.snapshot() - before
    for rowid in ordered:
        table.fetch(rowid)
    per_row = db.stats.snapshot() - before
    assert grouped.logical_reads == table.heap.page_count
    assert per_row.logical_reads - grouped.logical_reads == len(ordered)


def test_fetch_many_rejects_dead_and_invalid_rowids(db):
    table = db.create_table("rows", ["a"])
    rowids = [table.insert((i,)) for i in range(10)]
    table.delete(rowids[3])
    with pytest.raises(BlockError):
        table.fetch_many(rowids)
    with pytest.raises(BlockError):
        table.fetch_many([10 ** 9])
    with pytest.raises(BlockError):
        table.fetch_many([-1])
    assert table.fetch_many([]) == []


# ----------------------------------------------------------------------
# range coalescing
# ----------------------------------------------------------------------
def test_next_key_successor():
    assert next_key((1, 5)) == (1, 6)
    assert next_key((1, INT_MAX)) == (2, INT_MIN)
    assert next_key((INT_MAX, INT_MAX)) is None


def test_coalesce_ranges_merges_touching_and_overlapping():
    arity = 2
    # Overlapping ranges collapse.
    merged = coalesce_ranges([((1,), (5,)), ((3,), (9,))], arity)
    assert merged == [(pad_low((1,), 2), pad_high((9,), 2))]
    # Exactly adjacent in key space: (w, MAX) + 1 == (w + 1, MIN).
    merged = coalesce_ranges([((1,), (2,)), ((3,), (4,))], arity)
    assert merged == [(pad_low((1,), 2), pad_high((4,), 2))]
    # A representable gap keeps ranges apart.
    merged = coalesce_ranges([((1,), (2,)), ((4,), (5,))], arity)
    assert len(merged) == 2
    # Empty and inverted ranges are dropped; order is normalised.
    merged = coalesce_ranges([((7,), (4,)), ((5,), (6,)), ((1,), (2,))],
                             arity)
    assert merged == [(pad_low((1,), 2), pad_high((2,), 2)),
                      (pad_low((5,), 2), pad_high((6,), 2))]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
                max_size=12))
def test_coalesce_ranges_preserves_covered_keys(bounds):
    """The union of covered single-column keys is invariant."""
    arity = 1
    ranges = [((lo,), (hi,)) for lo, hi in bounds]
    merged = coalesce_ranges(ranges, arity)
    def covered(rs):
        keys = set()
        for lo, hi in rs:
            lo_k = pad_low(lo, arity)[0]
            hi_k = pad_high(hi, arity)[0]
            keys.update(range(lo_k, hi_k + 1))
        return keys
    assert covered(ranges) == covered(merged)
    # Merged ranges are sorted and pairwise non-adjacent.
    for (_, hi_a), (lo_b, _) in zip(merged, merged[1:]):
        assert next_key(hi_a) < lo_b
