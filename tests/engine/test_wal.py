"""Write-ahead log, checkpointing and crash recovery."""

from __future__ import annotations

import pytest

from repro.engine import (
    Database,
    FaultInjector,
    RecoveryError,
    SimulatedCrash,
    WalError,
    WriteAheadLog,
)
from repro.engine.wal import decode_record, encode_record


# ----------------------------------------------------------------------
# record framing
# ----------------------------------------------------------------------
def test_record_roundtrip_with_crc():
    record = {"t": "insert", "table": "T", "row": [1, 2, 3]}
    line = encode_record(record)
    assert decode_record(line) == record


def test_corrupt_line_fails_crc():
    line = encode_record({"t": "commit", "b": 1})
    with pytest.raises(WalError):
        decode_record(line[:-1] + ("0" if line[-1] != "0" else "1"))


def test_unknown_kind_rejected_both_ways():
    with pytest.raises(WalError):
        encode_record({"t": "vacuum"})
    good = encode_record({"t": "commit", "b": 1})
    with pytest.raises(WalError):
        decode_record(good[:9] + '{"t":"vacuum"}')


def test_encoding_is_canonical():
    a = encode_record({"t": "meta", "store": "S", "data": {"x": 1, "y": 2}})
    b = encode_record({"t": "meta", "data": {"y": 2, "x": 1}, "store": "S"})
    assert a == b


# ----------------------------------------------------------------------
# durability boundary
# ----------------------------------------------------------------------
def test_tail_is_volatile_until_forced():
    wal = WriteAheadLog()
    wal.append({"t": "begin", "b": 1})
    wal.append({"t": "commit", "b": 1})
    assert wal.tail_records == 2 and wal.durable_records == 0
    assert wal.drop_tail() == 2
    assert wal.tail_records == 0 and wal.durable_records == 0
    wal.append({"t": "begin", "b": 2})
    wal.append({"t": "commit", "b": 2})
    wal.force()
    assert wal.durable_records == 2
    assert wal.drop_tail() == 0


def test_force_accounts_whole_blocks():
    wal = WriteAheadLog(block_size=64)
    wal.append({"t": "begin", "b": 1})
    wal.append({"t": "commit", "b": 1})
    wal.force()
    appended = wal.durable_bytes
    assert wal.stats.wal_writes == -(-appended // 64)
    wal.records()
    assert wal.stats.wal_reads == -(-appended // 64)


def test_empty_force_is_free():
    wal = WriteAheadLog()
    wal.force()
    assert wal.forces == 0
    assert wal.stats.wal_writes == 0


# ----------------------------------------------------------------------
# database logging and atomic batches
# ----------------------------------------------------------------------
def test_solo_statements_autocommit():
    db = Database(wal=True)
    table = db.create_table("T", ["a"])
    table.insert((1,))
    # create_table and insert each committed as their own batch.
    kinds = [r["t"] for r in db.wal.records()]
    assert kinds == ["begin", "create_table", "commit", "begin", "insert", "commit"]


def test_atomic_groups_one_force():
    db = Database(wal=True)
    table = db.create_table("T", ["a"])
    forces_before = db.wal.forces
    with db.atomic():
        for i in range(10):
            table.insert((i,))
    assert db.wal.forces == forces_before + 1


def test_failed_batch_rolls_back_by_omission():
    db = Database(wal=True)
    table = db.create_table("T", ["a"])
    table.insert((1,))
    with pytest.raises(RuntimeError):
        with db.atomic():
            table.insert((2,))
            raise RuntimeError("mid-batch failure")
    assert db.wal_desynced
    recovered = db.recover()
    assert [row for _, row in recovered.table("T").scan()] == [(1,)]


def test_failed_batch_without_mutations_is_harmless():
    db = Database(wal=True)
    db.create_table("T", ["a"])
    with pytest.raises(KeyError):
        with db.atomic():
            raise KeyError("lookup miss before any mutation")
    assert not db.wal_desynced


def test_nested_atomic_flattens():
    db = Database(wal=True)
    table = db.create_table("T", ["a"])
    with db.atomic():
        table.insert((1,))
        with db.atomic():
            table.insert((2,))
        table.insert((3,))
    kinds = [r["t"] for r in db.wal.records()]
    assert kinds.count("begin") == 2  # DDL batch + one flattened batch
    assert kinds.count("commit") == 2


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
def test_recover_replays_committed_prefix():
    db = Database(wal=True)
    table = db.create_table("T", ["a", "b"])
    table.create_index("ia", ["a"])
    with db.atomic():
        for i in range(20):
            table.insert((i, i * i))
    table.delete(5)  # rowid 5 -> row (5, 25)
    recovered = db.recover()
    rows = sorted(row for _, row in recovered.table("T").scan())
    assert rows == sorted((i, i * i) for i in range(20) if i != 5)
    tree = recovered.table("T").index("ia").tree
    assert tree.violations() == []
    assert recovered.replayed_ops > 0


def test_recover_drops_unforced_tail():
    db = Database(wal=True)
    table = db.create_table("T", ["a"])
    table.insert((1,))
    # Simulate a crash mid-batch: records buffered but never forced.
    db.wal.append({"t": "begin", "b": 999})
    db.wal.append({"t": "insert", "table": "T", "row": [2]})
    recovered = db.recover()
    assert [row for _, row in recovered.table("T").scan()] == [(1,)]


def test_recover_restores_meta():
    db = Database(wal=True)
    db.create_table("T", ["a"])
    db.log_meta("T", {"kind": "test", "x": 7})
    recovered = db.recover()
    assert recovered.store_meta("T") == {"kind": "test", "x": 7}


def test_checkpoint_bounds_replay():
    db = Database(wal=True)
    table = db.create_table("T", ["a"])
    table.create_index("ia", ["a"])
    for i in range(10):
        table.insert((i,))
    db.checkpoint()
    assert db.wal.durable_records == 1
    table.insert((99,))
    recovered = db.recover()
    rows = sorted(row for _, row in recovered.table("T").scan())
    assert rows == sorted([(i,) for i in range(10)] + [(99,)])
    # ckpt + one committed batch (begin/insert/meta-free/commit)
    assert recovered.replayed_ops <= 2


def test_checkpoint_inside_batch_is_an_error():
    db = Database(wal=True)
    with pytest.raises(WalError):
        with db.atomic():
            db.checkpoint()


def test_checkpoint_requires_wal():
    db = Database()
    with pytest.raises(WalError):
        db.checkpoint()
    with pytest.raises(WalError):
        db.recover()


def test_crash_during_checkpoint_preserves_old_log():
    db = Database(wal=True)
    table = db.create_table("T", ["a"])
    table.insert((1,))
    injector = FaultInjector().crash_at_write_point(1)
    db.wal.rebind(db.stats, injector)
    with pytest.raises(SimulatedCrash):
        db.checkpoint()
    db.wal.rebind(db.stats, None)
    # The old log survived the crashed checkpoint swap intact.
    recovered = db.recover()
    assert [row for _, row in recovered.table("T").scan()] == [(1,)]


def test_replay_rejects_commit_without_begin():
    from repro.engine.database import _committed_records

    with pytest.raises(RecoveryError):
        _committed_records([{"t": "commit", "b": 1}])
    with pytest.raises(RecoveryError):
        _committed_records([{"t": "insert", "table": "T", "row": [1]}])


def test_wal_io_is_accounted_in_stats():
    db = Database(wal=True)
    table = db.create_table("T", ["a"])
    with db.measure() as delta:
        with db.atomic():
            for i in range(50):
                table.insert((i,))
    assert delta.wal_writes >= 1
    assert delta.wal_total >= 1
    assert db.stats.wal_writes >= 1


def test_wal_off_has_zero_wal_traffic():
    db = Database()
    table = db.create_table("T", ["a"])
    for i in range(50):
        table.insert((i,))
    db.flush()
    assert db.stats.wal_writes == 0
    assert db.stats.wal_reads == 0
