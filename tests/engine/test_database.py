"""Unit tests for the database facade."""

import pytest

from repro.engine import Database
from repro.engine.errors import SchemaError


def test_create_and_lookup_tables():
    db = Database()
    t1 = db.create_table("A", ["x"])
    t2 = db.create_table("B", ["y"])
    assert db.table("A") is t1
    assert db.table("B") is t2
    assert {t.name for t in db.tables()} == {"A", "B"}


def test_duplicate_table_rejected():
    db = Database()
    db.create_table("A", ["x"])
    with pytest.raises(SchemaError):
        db.create_table("A", ["y"])


def test_unknown_table_rejected():
    db = Database()
    with pytest.raises(SchemaError):
        db.table("missing")


def test_measure_reports_query_io():
    db = Database(block_size=512, cache_blocks=16)
    table = db.create_table("T", ["a"])
    table.create_index("i", ["a"])
    for i in range(2000):
        table.insert((i,))
    db.clear_cache()
    with db.measure() as delta:
        list(table.index_scan("i", (0,), (1999,)))
    assert delta.physical_reads > 0
    assert delta.logical_reads >= delta.physical_reads


def test_clear_cache_makes_next_scan_cold():
    # Keep the index smaller than the cache so the warm scan is hit-only.
    db = Database(block_size=512, cache_blocks=32)
    table = db.create_table("T", ["a"])
    table.create_index("i", ["a"])
    for i in range(300):
        table.insert((i,))
    list(table.index_scan("i"))  # warm the cache
    with db.measure() as warm:
        list(table.index_scan("i"))
    db.clear_cache()
    with db.measure() as cold:
        list(table.index_scan("i"))
    assert warm.physical_reads == 0
    assert cold.physical_reads > 0


def test_blocks_in_use_grows_with_data():
    db = Database(block_size=512, cache_blocks=16)
    table = db.create_table("T", ["a", "b"])
    table.create_index("i", ["a"])
    before = db.blocks_in_use
    for i in range(1000):
        table.insert((i, i))
    db.flush()
    assert db.blocks_in_use > before


def test_shared_stats_object():
    db = Database()
    assert db.disk.stats is db.stats
    assert db.pool.stats is db.stats
