"""Unit and property tests for record serialisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.errors import SerializationError
from repro.engine.serial import (
    INT_MAX,
    INT_MIN,
    IntTupleCodec,
    pack_header,
    pad_high,
    pad_low,
    unpack_header,
)

int64 = st.integers(min_value=INT_MIN, max_value=INT_MAX)


def test_pack_unpack_roundtrip_simple():
    codec = IntTupleCodec(3)
    entries = [(1, 2, 3), (-5, 0, INT_MAX)]
    data = codec.pack_many(entries)
    assert codec.unpack_many(data, 2) == entries


def test_entry_size_is_exact():
    codec = IntTupleCodec(4)
    assert codec.entry_size == 32
    assert len(codec.pack_many([(0, 0, 0, 0)])) == 32


def test_empty_pack():
    codec = IntTupleCodec(2)
    assert codec.pack_many([]) == b""
    assert codec.unpack_many(b"", 0) == []


def test_unpack_short_buffer_rejected():
    codec = IntTupleCodec(2)
    with pytest.raises(SerializationError):
        codec.unpack_many(b"\x00" * 8, 1)


def test_out_of_range_value_rejected():
    codec = IntTupleCodec(1)
    with pytest.raises(SerializationError):
        codec.pack_many([(2 ** 63,)])


def test_zero_arity_rejected():
    with pytest.raises(SerializationError):
        IntTupleCodec(0)


def test_pack_one_unpack_one():
    codec = IntTupleCodec(2)
    data = codec.pack_one((7, -9))
    assert codec.unpack_one(data) == (7, -9)


def test_header_roundtrip():
    data = pack_header(2, 1000, -1)
    assert unpack_header(data) == (2, 1000, -1)


def test_header_too_short():
    with pytest.raises(SerializationError):
        unpack_header(b"\x01")


def test_pad_low_and_high():
    assert pad_low((5,), 3) == (5, INT_MIN, INT_MIN)
    assert pad_high((5,), 3) == (5, INT_MAX, INT_MAX)
    assert pad_low((1, 2, 3), 3) == (1, 2, 3)


@given(st.lists(st.tuples(int64, int64, int64), max_size=50))
def test_roundtrip_property(entries):
    codec = IntTupleCodec(3)
    data = codec.pack_many(entries)
    assert codec.unpack_many(data, len(entries)) == entries


@given(st.integers(1, 6), st.data())
def test_roundtrip_any_arity(arity, data):
    codec = IntTupleCodec(arity)
    entries = data.draw(st.lists(
        st.tuples(*[int64] * arity), max_size=20))
    packed = codec.pack_many(entries)
    assert len(packed) == len(entries) * codec.entry_size
    assert codec.unpack_many(packed, len(entries)) == entries


def test_batch_struct_cache_reused():
    codec = IntTupleCodec(2)
    for _ in range(3):
        for count in (1, 4, 7):
            entries = [(i, -i) for i in range(count)]
            assert codec.unpack_many(codec.pack_many(entries),
                                     count) == entries
    # One cached Struct per distinct batch size, however often it is hit.
    assert set(codec._batch_structs) == {1, 4, 7}


def test_unpack_many_accepts_memoryview_and_extra_tail():
    codec = IntTupleCodec(3)
    entries = [(1, 2, 3), (4, 5, 6)]
    data = codec.pack_many(entries) + b"\xff" * 11
    assert codec.unpack_many(memoryview(data), 2) == entries


@given(st.lists(int64, min_size=0, max_size=3), st.integers(1, 5))
def test_padding_orders_extremes(prefix, arity):
    if len(prefix) > arity:
        prefix = prefix[:arity]
    low = pad_low(prefix, arity)
    high = pad_high(prefix, arity)
    assert low <= high
    assert len(low) == len(high) == arity
