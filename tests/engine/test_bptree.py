"""Unit tests for the B+-tree."""

import pytest

from repro.engine.bptree import NO_BLOCK, BPlusTree, DuplicateEntryError
from repro.engine.buffer import BufferPool
from repro.engine.errors import KeyNotFoundError, SchemaError
from repro.engine.storage import DiskManager


def make_tree(arity: int = 2, block_size: int = 256,
              capacity: int = 16) -> BPlusTree:
    disk = DiskManager(block_size=block_size)
    pool = BufferPool(disk, capacity=capacity)
    return BPlusTree(pool, arity=arity)


def test_empty_tree():
    tree = make_tree()
    assert len(tree) == 0
    assert tree.first() is None
    assert list(tree.scan_all()) == []
    assert not tree.contains((1, 2))
    tree.check_invariants()


def test_insert_and_contains():
    tree = make_tree()
    tree.insert((5, 1))
    tree.insert((3, 2))
    assert tree.contains((5, 1))
    assert tree.contains((3, 2))
    assert not tree.contains((5, 2))
    assert len(tree) == 2


def test_duplicate_insert_rejected():
    tree = make_tree()
    tree.insert((1, 1))
    with pytest.raises(DuplicateEntryError):
        tree.insert((1, 1))


def test_wrong_arity_rejected():
    tree = make_tree(arity=2)
    with pytest.raises(SchemaError):
        tree.insert((1, 2, 3))
    with pytest.raises(SchemaError):
        tree.contains((1,))


def test_ordered_scan_after_random_inserts(rng):
    tree = make_tree()
    entries = {(rng.randrange(1000), i) for i in range(500)}
    for entry in entries:
        tree.insert(entry)
    assert list(tree.scan_all()) == sorted(entries)
    tree.check_invariants()
    assert tree.height > 1  # must actually have split


def test_range_scan_prefix_semantics(rng):
    tree = make_tree(arity=3)
    entries = sorted({(rng.randrange(50), rng.randrange(100), i)
                      for i in range(400)})
    for entry in entries:
        tree.insert(entry)
    got = list(tree.scan_range((10,), (20,)))
    expected = [e for e in entries if 10 <= e[0] <= 20]
    assert got == expected
    # Two-column prefix.
    got = list(tree.scan_range((10, 50), (20,)))
    expected = [e for e in entries
                if (10, 50) <= (e[0], e[1]) and e[0] <= 20]
    assert got == expected


def test_range_scan_empty_when_lo_above_hi():
    tree = make_tree()
    tree.insert((1, 1))
    assert list(tree.scan_range((5,), (4,))) == []


def test_delete_missing_entry_rejected():
    tree = make_tree()
    tree.insert((1, 1))
    with pytest.raises(KeyNotFoundError):
        tree.delete((2, 2))


def test_delete_all_entries_collapses_to_empty(rng):
    tree = make_tree()
    entries = sorted({(rng.randrange(10_000), i) for i in range(600)})
    for entry in entries:
        tree.insert(entry)
    rng.shuffle(entries)
    for entry in entries:
        tree.delete(entry)
        if len(tree) % 97 == 0:
            tree.check_invariants()
    assert len(tree) == 0
    assert tree.height == 1
    assert list(tree.scan_all()) == []
    tree.check_invariants()


def test_interleaved_inserts_and_deletes(rng):
    tree = make_tree()
    alive: set[tuple[int, int]] = set()
    for step in range(3000):
        if alive and rng.random() < 0.4:
            victim = rng.choice(sorted(alive))
            tree.delete(victim)
            alive.remove(victim)
        else:
            entry = (rng.randrange(500), step)
            tree.insert(entry)
            alive.add(entry)
        if step % 500 == 0:
            tree.check_invariants()
    assert list(tree.scan_all()) == sorted(alive)
    tree.check_invariants()


def test_bulk_load_equals_inserts(rng):
    entries = sorted({(rng.randrange(100_000), i) for i in range(2000)})
    bulk = make_tree()
    bulk.bulk_load(entries)
    bulk.check_invariants()
    assert list(bulk.scan_all()) == entries
    assert len(bulk) == len(entries)


def test_bulk_load_rejects_unsorted():
    tree = make_tree()
    with pytest.raises(SchemaError):
        tree.bulk_load([(2, 1), (1, 1)])


def test_bulk_load_rejects_duplicates():
    tree = make_tree()
    with pytest.raises(SchemaError):
        tree.bulk_load([(1, 1), (1, 1)])


def test_bulk_load_rejects_non_empty():
    tree = make_tree()
    tree.insert((1, 1))
    with pytest.raises(SchemaError):
        tree.bulk_load([(2, 2)])


def test_bulk_load_empty_is_noop():
    tree = make_tree()
    tree.bulk_load([])
    assert len(tree) == 0
    tree.check_invariants()


def test_bulk_load_single_entry():
    tree = make_tree()
    tree.bulk_load([(7, 7)])
    assert list(tree.scan_all()) == [(7, 7)]
    tree.check_invariants()


def test_updates_after_bulk_load(rng):
    entries = sorted({(rng.randrange(10_000), i) for i in range(1500)})
    tree = make_tree()
    tree.bulk_load(entries)
    extra = [(rng.randrange(10_000), 100_000 + i) for i in range(300)]
    for entry in extra:
        tree.insert(entry)
    for entry in entries[::3]:
        tree.delete(entry)
    survivors = sorted(set(entries) - set(entries[::3]) | set(extra))
    assert list(tree.scan_all()) == survivors
    tree.check_invariants()


def test_last_le_basic():
    tree = make_tree()
    for value in (10, 20, 30):
        tree.insert((value, value))
    assert tree.last_le((25,)) == (20, 20)
    assert tree.last_le((30,)) == (30, 30)
    assert tree.last_le((9,)) is None
    assert tree.last_le((100,)) == (30, 30)


def test_last_le_across_leaves(rng):
    tree = make_tree()
    entries = sorted({(rng.randrange(100_000), i) for i in range(1500)})
    tree.bulk_load(entries)
    for probe in (0, 1, 50_000, 99_999, 200_000):
        expected = None
        for entry in entries:
            if entry <= (probe, 2 ** 62):
                expected = entry
        assert tree.last_le((probe,)) == expected


def test_leaf_chain_matches_scan(rng):
    tree = make_tree()
    for i in range(800):
        tree.insert((rng.randrange(5000), i))
    # check_invariants verifies the chain in-order; also verify termination.
    leaf_id = tree.root_id
    node = tree._get(leaf_id)
    while hasattr(node, "children"):
        leaf_id = node.children[0]
        node = tree._get(leaf_id)
    count = 0
    while leaf_id != NO_BLOCK:
        leaf = tree._get(leaf_id)
        count += len(leaf.entries)
        leaf_id = leaf.next_leaf
    assert count == len(tree)


def test_block_count_tracks_size(rng):
    tree = make_tree()
    for i in range(2000):
        tree.insert((rng.randrange(100_000), i))
    blocks = tree.block_count
    # O(n/b): entries-per-leaf is bounded by capacity, and fill >= 1/3.
    assert blocks >= 2000 / tree.leaf_capacity
    assert blocks <= 3 * (2000 / tree.leaf_capacity) + tree.height + 10


def test_scan_is_lazy():
    tree = make_tree()
    for i in range(200):
        tree.insert((i, i))
    scan = tree.scan_range((0,), (199,))
    first = next(scan)
    assert first == (0, 0)
