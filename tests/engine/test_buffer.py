"""Unit tests for the LRU buffer pool."""

import pytest

from repro.engine.buffer import BufferPool
from repro.engine.errors import BufferError_
from repro.engine.storage import DiskManager


class FakePage:
    """A page whose serialised form is its payload."""

    def __init__(self, payload: bytes) -> None:
        self.payload = payload

    def to_bytes(self) -> bytes:
        return self.payload


def load(data: bytes) -> FakePage:
    return FakePage(data)


def make_pool(capacity: int = 8) -> tuple[DiskManager, BufferPool]:
    disk = DiskManager(block_size=128)
    return disk, BufferPool(disk, capacity=capacity)


def write_block(disk: DiskManager, payload: bytes) -> int:
    block = disk.allocate()
    disk.write(block, payload)
    return block


def test_get_miss_then_hit():
    disk, pool = make_pool()
    block = write_block(disk, b"abc")
    before = disk.stats.physical_reads
    page1 = pool.get(block, load)
    page2 = pool.get(block, load)
    assert page1 is page2
    assert disk.stats.physical_reads == before + 1  # second get was a hit
    assert pool.stats.logical_reads >= 2


def test_eviction_writes_back_dirty_pages():
    disk, pool = make_pool(capacity=8)
    block = disk.allocate()
    pool.put_new(block, FakePage(b"dirty"))
    pool.mark_dirty(block)
    # Fill the pool to force eviction of `block`.
    for _ in range(10):
        other = write_block(disk, b"x")
        pool.get(other, load)
    assert not pool.is_resident(block)
    assert disk.read(block) == b"dirty"


def test_eviction_skips_clean_write_back():
    disk, pool = make_pool(capacity=8)
    block = write_block(disk, b"clean")
    pool.get(block, load)
    writes_before = disk.stats.physical_writes
    for _ in range(10):
        pool.get(write_block(disk, b"y"), load)
    # Exactly the 10 explicit write_block calls; evictions of clean pages
    # must not add write-backs.
    assert disk.stats.physical_writes == writes_before + 10


def test_pinned_pages_survive_eviction_pressure():
    disk, pool = make_pool(capacity=8)
    block = write_block(disk, b"pinme")
    pool.get(block, load)
    pool.pin(block)
    for _ in range(20):
        pool.get(write_block(disk, b"z"), load)
    assert pool.is_resident(block)
    pool.unpin(block)


def test_all_pinned_raises():
    disk, pool = make_pool(capacity=8)
    blocks = [write_block(disk, b"p") for _ in range(8)]
    for block in blocks:
        pool.get(block, load)
        pool.pin(block)
    with pytest.raises(BufferError_):
        pool.get(write_block(disk, b"q"), load)
    for block in blocks:
        pool.unpin(block)


def test_put_new_duplicate_rejected():
    disk, pool = make_pool()
    block = disk.allocate()
    pool.put_new(block, FakePage(b"a"))
    with pytest.raises(BufferError_):
        pool.put_new(block, FakePage(b"b"))


def test_mark_dirty_nonresident_rejected():
    disk, pool = make_pool()
    block = write_block(disk, b"a")
    with pytest.raises(BufferError_):
        pool.mark_dirty(block)


def test_unpin_without_pin_rejected():
    disk, pool = make_pool()
    block = write_block(disk, b"a")
    pool.get(block, load)
    with pytest.raises(BufferError_):
        pool.unpin(block)


def test_flush_all_persists_dirty_pages():
    disk, pool = make_pool()
    block = disk.allocate()
    pool.put_new(block, FakePage(b"persist"))
    pool.flush_all()
    assert disk.read(block) == b"persist"


def test_clear_empties_cache_after_flush():
    disk, pool = make_pool()
    block = disk.allocate()
    pool.put_new(block, FakePage(b"c"))
    pool.clear()
    assert pool.resident == 0
    assert disk.read(block) == b"c"


def test_drop_discards_without_write_back():
    disk, pool = make_pool()
    block = write_block(disk, b"orig")
    page = pool.get(block, load)
    page.payload = b"mutated"
    pool.mark_dirty(block)
    pool.drop(block)
    assert disk.read(block) == b"orig"


def test_drop_pinned_rejected():
    disk, pool = make_pool()
    block = write_block(disk, b"a")
    pool.get(block, load)
    pool.pin(block)
    with pytest.raises(BufferError_):
        pool.drop(block)
    pool.unpin(block)


def test_lru_order_eviction():
    disk, pool = make_pool(capacity=8)
    first = write_block(disk, b"first")
    pool.get(first, load)
    others = [write_block(disk, b"o") for _ in range(7)]
    for block in others:
        pool.get(block, load)
    # Touch `first` so it becomes most-recently-used.
    pool.get(first, load)
    pool.get(write_block(disk, b"new"), load)
    assert pool.is_resident(first)
    assert not pool.is_resident(others[0])


def test_capacity_floor_enforced():
    disk = DiskManager(block_size=128)
    with pytest.raises(BufferError_):
        BufferPool(disk, capacity=2)


def test_physical_reads_never_exceed_logical():
    disk, pool = make_pool(capacity=8)
    blocks = [write_block(disk, bytes([i])) for i in range(30)]
    disk.stats.reset()
    for _ in range(3):
        for block in blocks:
            pool.get(block, load)
    assert disk.stats.physical_reads <= pool.stats.logical_reads
