"""Unit tests for the I/O statistics counters."""

from repro.engine.stats import IoSnapshot, IoStats, measure


def test_snapshot_is_immutable_copy():
    stats = IoStats()
    stats.physical_reads = 3
    snap = stats.snapshot()
    stats.physical_reads = 10
    assert snap.physical_reads == 3


def test_snapshot_subtraction():
    a = IoSnapshot(physical_reads=10, physical_writes=4, logical_reads=20,
                   blocks_allocated=2)
    b = IoSnapshot(physical_reads=3, physical_writes=1, logical_reads=5,
                   blocks_allocated=1)
    diff = a - b
    assert diff.physical_reads == 7
    assert diff.physical_writes == 3
    assert diff.logical_reads == 15
    assert diff.blocks_allocated == 1


def test_physical_total():
    snap = IoSnapshot(physical_reads=2, physical_writes=5)
    assert snap.physical_total == 7


def test_measure_captures_delta():
    stats = IoStats()
    stats.physical_reads = 5
    with measure(stats) as delta:
        stats.physical_reads += 7
        stats.logical_reads += 2
    assert delta.physical_reads == 7
    assert delta.logical_reads == 2
    assert delta.physical_writes == 0


def test_measure_captures_delta_on_exception():
    stats = IoStats()
    try:
        with measure(stats) as delta:
            stats.physical_writes += 4
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert delta.physical_writes == 4


def test_reset_zeroes_counters():
    stats = IoStats()
    stats.physical_reads = 1
    stats.physical_writes = 2
    stats.logical_reads = 3
    stats.blocks_allocated = 4
    stats.reset()
    snap = stats.snapshot()
    assert (snap.physical_reads, snap.physical_writes,
            snap.logical_reads, snap.blocks_allocated) == (0, 0, 0, 0)
