"""Unit tests for tables with secondary indexes."""

import pytest

from repro.engine import Database
from repro.engine.errors import SchemaError


def make_table(db=None):
    db = db or Database(block_size=512, cache_blocks=16)
    table = db.create_table("T", ["a", "b", "c"])
    table.create_index("ia", ["a"])
    table.create_index("iab", ["a", "b"])
    return db, table


def test_insert_maintains_all_indexes(rng):
    _, table = make_table()
    rows = [(rng.randrange(100), rng.randrange(100), i) for i in range(300)]
    rowids = [table.insert(row) for row in rows]
    scanned = [entry for entry in table.index_scan("ia")]
    assert len(scanned) == 300
    assert scanned == sorted((row[0], rowid)
                             for row, rowid in zip(rows, rowids))


def test_index_scan_prefix(rng):
    _, table = make_table()
    rows = [(i % 10, i, i) for i in range(200)]
    table.bulk_load(rows)
    got = [e for e in table.index_scan("iab", (3,), (3,))]
    assert all(e[0] == 3 for e in got)
    assert len(got) == 20


def test_delete_removes_from_heap_and_indexes():
    _, table = make_table()
    rowid = table.insert((1, 2, 3))
    other = table.insert((4, 5, 6))
    assert table.delete(rowid) == (1, 2, 3)
    assert table.row_count == 1
    assert [e for e in table.index_scan("ia")] == [(4, other)]
    for index in table.indexes.values():
        index.tree.check_invariants()


def test_duplicate_key_values_allowed():
    _, table = make_table()
    table.insert((7, 7, 1))
    table.insert((7, 7, 2))  # same key columns, distinct rowid suffix
    entries = [e for e in table.index_scan("iab", (7, 7), (7, 7))]
    assert len(entries) == 2


def test_bulk_load_builds_equivalent_indexes(rng):
    rows = [(rng.randrange(50), rng.randrange(50), i) for i in range(500)]
    _, loaded = make_table()
    loaded.bulk_load(rows)
    db2 = Database(block_size=512, cache_blocks=16)
    _, inserted = make_table(db2)
    for row in rows:
        inserted.insert(row)
    assert ([e[:2] for e in loaded.index_scan("ia")]
            == [e[:2] for e in inserted.index_scan("ia")])
    loaded.index("ia").tree.check_invariants()
    loaded.index("iab").tree.check_invariants()


def test_bulk_load_non_empty_rejected():
    _, table = make_table()
    table.insert((1, 1, 1))
    with pytest.raises(SchemaError):
        table.bulk_load([(2, 2, 2)])


def test_create_index_on_existing_rows():
    _, table = make_table()
    rowids = [table.insert((i, i, i)) for i in range(50)]
    index = table.create_index("ic", ["c"])
    assert len(index.tree) == 50
    assert [e for e in table.index_scan("ic", (10,), (10,))] == [(10, rowids[10])]


def test_schema_errors():
    db = Database(block_size=512, cache_blocks=16)
    with pytest.raises(SchemaError):
        db.create_table("empty", [])
    with pytest.raises(SchemaError):
        db.create_table("dup", ["x", "x"])
    table = db.create_table("T", ["a"])
    with pytest.raises(SchemaError):
        table.create_index("bad", ["nope"])
    table.create_index("i", ["a"])
    with pytest.raises(SchemaError):
        table.create_index("i", ["a"])
    with pytest.raises(SchemaError):
        table.index("missing")
    with pytest.raises(SchemaError):
        table.column_position("zzz")


def test_fetch_and_scan():
    _, table = make_table()
    rowid = table.insert((1, 2, 3))
    assert table.fetch(rowid) == (1, 2, 3)
    assert list(table.scan()) == [(rowid, (1, 2, 3))]
    assert len(table) == 1


def test_index_last_le():
    _, table = make_table()
    for i in (10, 20, 30):
        table.insert((i, 0, 0))
    entry = table.index_last_le("ia", (25,))
    assert entry[0] == 20
    assert table.index_last_le("ia", (5,)) is None
