"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.engine import Database


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def db() -> Database:
    """A small-cache database so eviction paths actually run in tests."""
    return Database(block_size=512, cache_blocks=16)


@pytest.fixture
def paper_db() -> Database:
    """A database with the paper's geometry (2 KB blocks, 200-block cache)."""
    return Database()


def make_intervals(rng: random.Random, count: int, domain: int = 100_000,
                   mean_length: int = 500) -> list[tuple[int, int, int]]:
    """Random (lower, upper, id) records with exponential-ish lengths."""
    records = []
    for i in range(count):
        lower = rng.randrange(0, domain)
        length = min(int(rng.expovariate(1 / mean_length)), domain)
        records.append((lower, lower + length, i))
    return records
