"""Tests for the sqlite3-backed RI-tree (paper Section 5)."""

import sqlite3

import pytest

from repro.core.predicates import range_duration
from repro.sql import SQLRITree

from ..conftest import make_intervals


def test_figure2_schema_created():
    tree = SQLRITree()
    tables = {row[0] for row in tree.conn.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table'")}
    assert "Intervals" in tables
    assert "Intervals_params" in tables
    indexes = {row[0] for row in tree.conn.execute(
        "SELECT name FROM sqlite_master WHERE type = 'index'")}
    assert "Intervals_lowerIndex" in indexes
    assert "Intervals_upperIndex" in indexes


def test_docstring_example():
    tree = SQLRITree()
    tree.insert(3, 9, interval_id=1)
    tree.insert(5, 15, interval_id=2)
    assert sorted(tree.intersection(8, 12)) == [1, 2]


def test_empty_tree():
    tree = SQLRITree()
    assert tree.intersection(0, 100) == []
    assert tree.interval_count == 0


def test_matches_brute_force(rng):
    records = make_intervals(rng, 800, domain=60_000, mean_length=500)
    tree = SQLRITree()
    tree.bulk_load(records)
    lookup = {r[2]: r[:2] for r in records}
    for _ in range(120):
        lower = rng.randrange(0, 66_000)
        upper = lower + rng.randrange(0, 3000)
        got = sorted(tree.intersection(lower, upper))
        expected = sorted(i for i, (s, e) in lookup.items()
                          if s <= upper and e >= lower)
        assert got == expected


def test_preliminary_query_equivalent(rng):
    records = make_intervals(rng, 400, domain=30_000, mean_length=400)
    tree = SQLRITree()
    tree.bulk_load(records)
    for _ in range(40):
        lower = rng.randrange(0, 33_000)
        upper = lower + rng.randrange(0, 2000)
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(tree.intersection_preliminary(lower, upper))


def test_union_all_duplicate_free(rng):
    records = make_intervals(rng, 500, domain=20_000, mean_length=2000)
    tree = SQLRITree()
    tree.bulk_load(records)
    for _ in range(40):
        lower = rng.randrange(0, 22_000)
        upper = lower + rng.randrange(0, 5000)
        results = tree.intersection(lower, upper)
        assert len(results) == len(set(results))


def test_single_statement_delete():
    tree = SQLRITree()
    tree.insert(1, 10, 1)
    tree.insert(1, 10, 2)
    tree.delete(1, 10, 1)
    assert tree.intersection(5, 5) == [2]
    with pytest.raises(KeyError):
        tree.delete(1, 10, 1)
    with pytest.raises(KeyError):
        tree.delete(99, 100, 5)


def test_params_persist_across_reopen(tmp_path):
    path = tmp_path / "ritree.db"
    conn = sqlite3.connect(path)
    tree = SQLRITree(conn, name="P")
    tree.bulk_load([(100, 200, 1), (-50, 20, 2), (5000, 6000, 3)])
    params_before = tree.backbone.params()
    conn.commit()
    conn.close()

    conn2 = sqlite3.connect(path)
    reopened = SQLRITree(conn2, name="P", attach=True)
    assert reopened.backbone.params() == params_before
    assert sorted(reopened.intersection(-100, 10_000)) == [1, 2, 3]
    # Updates continue correctly after reopening.
    reopened.insert(150, 160, 4)
    assert sorted(reopened.intersection(140, 170)) == [1, 4]


def test_attach_without_params_rejected():
    conn = sqlite3.connect(":memory:")
    with pytest.raises(Exception):
        SQLRITree(conn, name="Nothing", attach=True)


def test_view_trigger_wrapping():
    conn = sqlite3.connect(":memory:")
    tree = SQLRITree(conn, name="W")
    view = tree.create_view()
    conn.executemany(
        f'INSERT INTO {view} ("lower", "upper", "id") VALUES (?, ?, ?)',
        [(0, 10, 1), (5, 25, 2), (30, 40, 3)])
    tree.sync_params()
    assert sorted(tree.intersection(8, 35)) == [1, 2, 3]
    assert tree.intersection(26, 29) == []


def test_temporal_now_and_infinity():
    tree = SQLRITree(now=1000)
    tree.insert(0, 100, 1)
    tree.insert_infinite(500, 2)
    tree.insert_until_now(900, 3)
    assert sorted(tree.intersection(950, 960)) == [2, 3]
    assert tree.intersection(101, 400) == []
    tree.advance_to(5000)
    assert sorted(tree.intersection(2000, 2100)) == [2, 3]
    with pytest.raises(ValueError):
        tree.insert_until_now(6000, 4)
    with pytest.raises(ValueError):
        tree.advance_to(0)


def test_query_plan_uses_both_indexes():
    tree = SQLRITree()
    tree.bulk_load([(i, i + 10, i) for i in range(100)])
    plan = "\n".join(tree.explain_intersection(20, 40))
    assert "upperIndex" in plan
    assert "lowerIndex" in plan


def test_multiple_trees_share_connection():
    conn = sqlite3.connect(":memory:")
    a = SQLRITree(conn, name="A")
    b = SQLRITree(conn, name="B")
    a.insert(0, 10, 1)
    b.insert(100, 110, 2)
    assert a.intersection(0, 200) == [1]
    assert b.intersection(0, 200) == [2]


def test_explain_query_families_use_both_indexes():
    tree = SQLRITree()
    tree.bulk_load([(i * 30, i * 30 + 20 + i % 40, i) for i in range(300)])
    plan = "\n".join(
        tree.explain_query(100, 4_000,
                           predicate=range_duration(0, 35)))
    assert "lowerIndex" in plan
    assert "upperIndex" in plan
    assert "AUTOMATIC" not in plan
    # Results match the refinement run for real.
    expected = sorted(
        i for s, e, i in tree.stored_records()
        if s <= 4_000 and e >= 100 and e - s <= 35)
    assert sorted(tree.query(100, 4_000,
                             predicate=range_duration(0, 35))) == expected


def test_explain_query_delegates_and_gates():
    tree = SQLRITree()
    tree.bulk_load([(10, 50, 1), (40, 90, 2)])
    assert (tree.explain_query(20, 60)
            == tree.explain_intersection(20, 60))
    # An empty candidate range (before with nothing on the left) makes
    # the plan trivially empty.
    assert tree.explain_query(0, 5, predicate="before") == []
