"""Transaction scoping and busy/locked retry on the sqlite backend."""

from __future__ import annotations

import sqlite3

import pytest

from repro.engine import RetryExhaustedError, RetryPolicy
from repro.sql.ritree_sql import (
    _BATCH_TABLES,
    SQLRITree,
    sqlite_transient_classify,
)


def batch_row_counts(tree) -> dict[str, int]:
    return {
        table: tree.conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
        for table in _BATCH_TABLES
    }


def test_classify_is_busy_or_locked_only():
    assert sqlite_transient_classify(sqlite3.OperationalError("database is locked"))
    assert sqlite_transient_classify(sqlite3.OperationalError("database is busy"))
    assert not sqlite_transient_classify(sqlite3.OperationalError("no such table: x"))
    assert not sqlite_transient_classify(sqlite3.IntegrityError("locked"))
    assert not sqlite_transient_classify(ValueError("database is locked"))


# ----------------------------------------------------------------------
# batch fill cycles: no stray TEMP rows can outlive a failure
# ----------------------------------------------------------------------
def test_mid_cycle_failure_leaves_no_stray_batch_rows():
    tree = SQLRITree()
    tree.bulk_load([(i, i + 10, i) for i in range(0, 100, 5)])

    def failing_run():
        raise RuntimeError("mid-cycle failure after the fill")

    with pytest.raises(RuntimeError):
        tree._batch_cycle(
            lambda: tree._fill_batch_tables([(0, 50), (60, 90)]),
            failing_run,
            empty=[],
        )
    assert batch_row_counts(tree) == {table: 0 for table in _BATCH_TABLES}
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
    # The connection is usable immediately: no transaction left open.
    assert sorted(tree.intersection(0, 12)) == [0, 5, 10]


def test_invalid_probe_mid_batch_leaves_store_clean():
    tree = SQLRITree()
    tree.bulk_load([(1, 5, 1), (7, 20, 2)])
    with pytest.raises(ValueError):
        tree.intersection_many([(0, 10), (9, 3)])  # second probe inverted
    assert batch_row_counts(tree) == {table: 0 for table in _BATCH_TABLES}
    assert tree.verify().ok
    assert tree.intersection_many([(0, 10)]) == [[1, 2]]


def test_busy_run_is_rolled_back_and_retried():
    tree = SQLRITree(retry=RetryPolicy(attempts=3))
    tree.bulk_load([(1, 5, 1), (7, 20, 2)])
    failures = []

    def flaky_run():
        if not failures:
            failures.append(1)
            raise sqlite3.OperationalError("database is locked")
        return list(tree.conn.execute('SELECT COUNT(*) FROM batchProbes'))

    rows = tree._batch_cycle(
        lambda: tree._fill_batch_tables([(0, 10)]), flaky_run, empty=[]
    )
    # The retried cycle re-ran the fill after the rollback reverted it.
    assert rows == [(1,)]
    assert tree.retry.total_retries == 1
    assert batch_row_counts(tree) == {table: 0 for table in _BATCH_TABLES}
    assert tree.verify().ok


def test_batch_retry_exhaustion_is_typed():
    tree = SQLRITree(retry=RetryPolicy(attempts=2))
    tree.bulk_load([(1, 5, 1)])

    def always_locked():
        raise sqlite3.OperationalError("database is busy")

    with pytest.raises(RetryExhaustedError):
        tree._batch_cycle(
            lambda: tree._fill_batch_tables([(0, 10)]), always_locked, empty=[]
        )
    assert batch_row_counts(tree) == {table: 0 for table in _BATCH_TABLES}
    assert tree.verify().ok


def test_non_transient_errors_pass_through_unretried():
    tree = SQLRITree(retry=RetryPolicy(attempts=5))
    tree.bulk_load([(1, 5, 1)])

    def broken_run():
        raise sqlite3.OperationalError("no such table: nowhere")

    with pytest.raises(sqlite3.OperationalError):
        tree._batch_cycle(
            lambda: tree._fill_batch_tables([(0, 10)]), broken_run, empty=[]
        )
    assert tree.retry.total_retries == 0


# ----------------------------------------------------------------------
# fill transactions: rollback, retry, and the params dirty flag
# ----------------------------------------------------------------------
def test_transact_rolls_back_first_attempt_then_succeeds():
    tree = SQLRITree(retry=RetryPolicy(attempts=3))
    failures = []

    def body():
        tree.conn.execute(
            f'INSERT INTO {tree.name} ("node", "lower", "upper", "id") '
            f"VALUES (?, ?, ?, ?)",
            (tree.backbone.register(1, 2), 1, 2, 7),
        )
        if not failures:
            failures.append(1)
            raise sqlite3.OperationalError("database is locked")

    tree._transact(body)
    # Exactly one row: the failed attempt's insert was rolled back.
    count = tree.conn.execute(f"SELECT COUNT(*) FROM {tree.name}").fetchone()[0]
    assert count == 1
    assert tree.retry.total_retries == 1


def test_params_dictionary_survives_a_rolled_back_attempt():
    tree = SQLRITree(retry=RetryPolicy(attempts=3))
    for lower, upper, _ in [(1, 5, 1), (300, 900, 2)]:
        tree.backbone.register(lower, upper)
    failures = []

    def body():
        tree._save_params()
        if not failures:
            failures.append(1)
            raise sqlite3.OperationalError("database is locked")

    # The rollback reverts the dictionary write; without the dirty-flag
    # reset the retry would skip re-persisting and leave it stale.
    tree._transact(body)
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]


def test_failed_bulk_load_resets_the_dirty_flag():
    tree = SQLRITree(retry=RetryPolicy(attempts=1))
    bad = [(1, 5, 1), (3, 9, [])]  # a list cannot bind as the id column
    with pytest.raises((sqlite3.ProgrammingError, sqlite3.InterfaceError)):
        tree.bulk_load(bad)
    assert tree.interval_count == 0
    tree.bulk_load([(1, 5, 1), (3, 9, 2)])
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]


def test_failed_cycle_spares_pending_single_statement_work():
    tree = SQLRITree(retry=RetryPolicy(attempts=1))
    tree.insert(1, 5, 1)  # implicit transaction, not yet committed

    def always_locked():
        raise sqlite3.OperationalError("database is locked")

    with pytest.raises(RetryExhaustedError):
        tree._batch_cycle(
            lambda: tree._fill_batch_tables([(0, 10)]), always_locked, empty=[]
        )
    # The cycle's rollback must not swallow the earlier insert.
    assert tree.interval_count == 1
    assert tree.verify().ok


# ----------------------------------------------------------------------
# genuine cross-connection contention on a file database
# ----------------------------------------------------------------------
def test_real_lock_contention_roundtrip(tmp_path):
    path = str(tmp_path / "intervals.db")
    tree = SQLRITree(
        sqlite3.connect(path, timeout=0.05), retry=RetryPolicy(attempts=2)
    )
    tree.bulk_load([(1, 5, 1)])
    blocker = sqlite3.connect(path, timeout=0.05)
    blocker.execute("BEGIN IMMEDIATE")
    try:
        with pytest.raises(RetryExhaustedError):
            tree.bulk_load([(10, 20, 2)])
    finally:
        blocker.rollback()
        blocker.close()
    tree.bulk_load([(10, 20, 2)])
    assert sorted(tree.intersection(0, 100)) == [1, 2]
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
