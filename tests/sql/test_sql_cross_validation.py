"""Cross-validation: SQL backends vs engine backends vs brute force."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RITree
from repro.methods import ISTree, TileIndex
from repro.methods.memory import BruteForceIntervals
from repro.sql import SQLISTree, SQLRITree, SQLTileIndex

from ..conftest import make_intervals

record = st.tuples(st.integers(0, 2 ** 20 - 1), st.integers(0, 5000),
                   st.integers(0, 10_000)).map(
    lambda t: (t[0], min(t[0] + t[1], 2 ** 20 - 1), t[2]))
query = st.tuples(st.integers(0, 2 ** 20 - 1), st.integers(0, 10_000)).map(
    lambda t: (t[0], t[0] + t[1]))


def unique_ids(records):
    seen = set()
    out = []
    for lower, upper, interval_id in records:
        if interval_id not in seen:
            seen.add(interval_id)
            out.append((lower, upper, interval_id))
    return out


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, max_size=60), st.lists(query, max_size=4))
def test_sql_and_engine_backends_agree(records, queries):
    records = unique_ids(records)
    brute = BruteForceIntervals(records)
    engine_tree = RITree()
    engine_tree.bulk_load(records)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(records)
    sql_ist = SQLISTree()
    sql_ist.bulk_load(records)
    sql_tile = SQLTileIndex(fixed_level=9)
    sql_tile.bulk_load(records)
    for lower, upper in queries:
        expected = sorted(brute.intersection(lower, upper))
        assert sorted(engine_tree.intersection(lower, upper)) == expected
        assert sorted(sql_tree.intersection(lower, upper)) == expected
        assert sorted(sql_ist.intersection(lower, upper)) == expected
        assert sorted(sql_tile.intersection(lower, upper)) == expected


def test_sql_competitors_match_engine_competitors(rng):
    records = make_intervals(rng, 600, domain=200_000, mean_length=800)
    engine_ist = ISTree(ordering="D")
    engine_ist.bulk_load(sorted(records))
    sql_ist = SQLISTree()
    sql_ist.bulk_load(records)
    engine_tile = TileIndex(fixed_level=10)
    engine_tile.bulk_load(records)
    sql_tile = SQLTileIndex(fixed_level=10)
    sql_tile.bulk_load(records)
    assert sql_tile.entry_count == engine_tile.index_entry_count
    for _ in range(60):
        lower = rng.randrange(0, 220_000)
        upper = lower + rng.randrange(0, 4000)
        assert sorted(engine_ist.intersection(lower, upper)) == \
            sorted(sql_ist.intersection(lower, upper))
        assert sorted(engine_tile.intersection(lower, upper)) == \
            sorted(sql_tile.intersection(lower, upper))


def test_sql_ist_delete(rng):
    records = make_intervals(rng, 100, domain=10_000, mean_length=100)
    sql_ist = SQLISTree()
    sql_ist.bulk_load(records)
    sql_ist.delete(*records[0])
    assert sql_ist.interval_count == 99
    import pytest
    with pytest.raises(KeyError):
        sql_ist.delete(*records[0])


def test_sql_tileindex_delete(rng):
    records = make_intervals(rng, 100, domain=10_000, mean_length=500)
    sql_tile = SQLTileIndex(fixed_level=12)
    sql_tile.bulk_load(records)
    before = sql_tile.entry_count
    sql_tile.delete(*records[0])
    assert sql_tile.entry_count < before
    import pytest
    with pytest.raises(KeyError):
        sql_tile.delete(*records[0])
