"""The unified store API on sqlite3: joins, batches, planner, satellites.

The acceptance surface of the protocol split: on randomized two-sided
workloads the sqlite backend's set-at-a-time SQL join, the sweep over its
enumerated relation, and the ``auto`` planner must be pair-set-identical
to the simulated-engine strategies and the counting oracle, with the
``auto`` dispatch consistent with ``RITreeCostModel.from_sql_tree``
estimates; plus the update-path economies (dirty-flag parameter
persistence, the empty-backbone fast path) observed at the statement
level through sqlite's trace hook.
"""

import pytest

from repro.core import RITree, RITreeCostModel
from repro.core.join import AutoJoin, SweepJoin
from repro.sql import SQLRITree
from repro.workloads import join_workload
from repro.workloads.joins import expected_pair_count

from ..conftest import make_intervals


def two_sided(seed, outer_n=120, inner_n=900, outer_d=4000, inner_d=700):
    workload = join_workload(outer_n=outer_n, inner_n=inner_n,
                             outer_d=outer_d, inner_d=inner_d, seed=seed)
    return workload.outer.records, workload.inner.records


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_sql_join_matches_engine_and_oracles(seed):
    outer, inner = two_sided(seed)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    engine_tree = RITree()
    engine_tree.bulk_load(inner)

    sql_pairs = sql_tree.join_pairs(outer)
    reference = sorted(sql_pairs)
    assert len(sql_pairs) == len(set(sql_pairs))
    assert reference == sorted(engine_tree.join_pairs(outer))
    assert reference == sorted(SweepJoin().pairs(outer, inner))
    assert len(reference) == expected_pair_count(outer, inner)
    assert sql_tree.join_count(outer) == len(reference)


@pytest.mark.parametrize("seed", [4, 5])
def test_auto_on_sql_backend_is_consistent_with_the_planner(seed):
    outer, inner = two_sided(seed)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    planned = sql_tree.cost_model().estimate_join(outer)
    auto = AutoJoin(method=sql_tree)
    pairs = auto.pairs(outer, inner)
    assert auto.last_decision.choice == planned.choice
    assert sorted(pairs) == sorted(SweepJoin().pairs(outer, inner))
    assert auto.count(outer, inner) == len(pairs)


def test_planner_decisions_across_regimes():
    """Pinned workloads on either side of the index/sweep crossover."""
    outer, inner = two_sided(3, outer_n=5, inner_n=8000,
                             outer_d=2000, inner_d=1000)
    few_probes = SQLRITree()
    few_probes.bulk_load(inner)
    assert few_probes.cost_model().estimate_join(outer).choice == \
        "index-nested-loop"

    outer, inner = two_sided(0, outer_n=200, inner_n=2000,
                             outer_d=2000, inner_d=2000)
    many_probes = SQLRITree()
    many_probes.bulk_load(inner)
    assert many_probes.cost_model().estimate_join(outer).choice == "sweep"


def test_from_sql_tree_estimates_track_reality(rng):
    records = make_intervals(rng, 2000, domain=100_000, mean_length=800)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(records)
    model = RITreeCostModel.from_sql_tree(sql_tree)
    assert model.summary.count == len(records)
    probes = make_intervals(rng, 150, domain=100_000, mean_length=1200)
    estimate = model.estimate_join(probes)
    actual = sql_tree.join_count(probes)
    # Histogram resolution bounds the estimation error; a loose 25%
    # envelope keeps the test meaningful without pinning the quantiles.
    assert estimate.result_count == pytest.approx(actual, rel=0.25)


def test_from_sql_tree_quantiles_match_python_equidepth(rng):
    """NTILE boundaries agree with BoundSummary's own quantiles ±1 rank."""
    records = make_intervals(rng, 1500, domain=50_000, mean_length=500)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(records)
    model = RITreeCostModel.from_sql_tree(sql_tree)
    for lower, upper in [(0, 500), (10_000, 12_000), (0, 55_000)]:
        sql_estimate = model.summary.intersecting(lower, upper)
        exact = sum(1 for s, e, _ in records if s <= upper and e >= lower)
        assert sql_estimate == pytest.approx(exact, abs=0.04 * len(records))


def test_sql_cost_model_is_cached_and_refreshable():
    sql_tree = SQLRITree()
    sql_tree.bulk_load([(i, i + 10, i) for i in range(200)])
    model = sql_tree.cost_model()
    assert sql_tree.cost_model() is model
    assert model.summary.count == 200
    sql_tree.bulk_load([(5000 + i, 5010 + i, 1000 + i) for i in range(100)])
    assert sql_tree.cost_model().summary.count == 200  # stale until refresh
    assert sql_tree.cost_model(refresh=True).summary.count == 300


def test_intersection_many_one_fill_cycle(rng):
    """The batch path answers every query with a single statement pair."""
    records = make_intervals(rng, 600, domain=40_000, mean_length=500)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(records)
    queries = []
    for _ in range(30):
        lower = rng.randrange(0, 44_000)
        queries.append((lower, lower + rng.randrange(0, 2500)))
    statements = []
    sql_tree.conn.set_trace_callback(statements.append)
    batched = sql_tree.intersection_many(queries)
    sql_tree.conn.set_trace_callback(None)
    selects = [s for s in statements if s.lstrip().startswith("SELECT")]
    assert len(selects) == 1, selects
    for (lower, upper), ids in zip(queries, batched):
        assert sorted(ids) == sorted(sql_tree.intersection(lower, upper))


def test_params_written_only_when_changed():
    """Satellite: per-row inserts persist the dictionary O(changes) times."""
    sql_tree = SQLRITree()
    sql_tree.insert(0, 1024, 0)  # fixes offset (one parameter change)
    statements = []
    sql_tree.conn.set_trace_callback(statements.append)
    for i in range(1, 120):
        sql_tree.insert(0, 1024, i)  # same fork node, parameters stable
    sql_tree.conn.set_trace_callback(None)
    param_writes = [s for s in statements if "Intervals_params" in s]
    assert param_writes == []
    inserts = [s for s in statements if s.lstrip().startswith("INSERT")]
    assert len(inserts) == 119


def test_params_still_persist_across_reopen_with_dirty_flag(tmp_path):
    import sqlite3

    path = tmp_path / "dirty.db"
    conn = sqlite3.connect(path)
    tree = SQLRITree(conn, name="P")
    tree.extend([(100, 200, 1), (-50, 20, 2), (5000, 6000, 3)])
    params = tree.backbone.params()
    conn.commit()
    conn.close()
    reopened = SQLRITree(sqlite3.connect(path), name="P", attach=True)
    assert reopened.backbone.params() == params
    assert sorted(reopened.intersection(-100, 10_000)) == [1, 2, 3]


def test_empty_tree_queries_issue_no_statements():
    """Satellite: the empty-backbone fast path skips every round-trip."""
    sql_tree = SQLRITree()
    statements = []
    sql_tree.conn.set_trace_callback(statements.append)
    assert sql_tree.intersection(0, 1000) == []
    assert sql_tree.intersection_count(0, 1000) == 0
    assert sql_tree.intersection_many([(0, 10), (20, 30)]) == [[], []]
    assert sql_tree.join_count([(0, 10, 1)]) == 0
    sql_tree.conn.set_trace_callback(None)
    assert statements == []


def test_failed_extend_does_not_poison_param_persistence(tmp_path):
    """A rolled-back batch must not leave the dirty flag claiming the
    parameter dictionary is up to date on disk."""
    import sqlite3

    path = tmp_path / "rollback.db"
    conn = sqlite3.connect(path)
    tree = SQLRITree(conn, name="R")
    conn.commit()

    def exploding():
        yield (0, 10, 1)
        yield (100, 2000, 2)  # grows the roots, shrinks minstep
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        tree.extend(exploding())
    # The transaction rolled back; the next successful insert must
    # persist the current parameters again (snapshot was invalidated).
    tree.insert(50, 900, 3)
    conn.commit()
    conn.close()
    reopened = SQLRITree(sqlite3.connect(path), name="R", attach=True)
    assert sorted(reopened.intersection(0, 10_000)) == [3]


def test_stored_records_materialise_temporal_bounds():
    """Sweep over stored_records must join the same pairs as the
    reserved-node scans, also for now-relative and infinite rows."""
    sql_tree = SQLRITree(now=100)
    sql_tree.insert(0, 30, 3)
    sql_tree.insert_until_now(5, 1)
    sql_tree.insert_infinite(50, 2)
    probes = [(150, 160, 9), (10, 20, 8)]
    reference = sorted(sql_tree.join_pairs(probes))
    assert reference == [(8, 1), (8, 3), (9, 2)]
    assert sorted(SweepJoin().pairs(probes, sql_tree.stored_records())) == \
        reference
    records = {i: (s, e) for s, e, i in sql_tree.stored_records()}
    assert records[1] == (5, 100)  # effective upper = now

    from repro.core import TemporalRITree

    engine_tree = TemporalRITree(now=100)
    engine_tree.insert(0, 30, 3)
    engine_tree.insert_until_now(5, 1)
    engine_tree.insert_infinite(50, 2)
    assert sorted(engine_tree.stored_records()) == \
        sorted(sql_tree.stored_records())
    assert sorted(SweepJoin().pairs(probes, engine_tree.stored_records())) \
        == reference


def test_reserved_fork_rows_still_reach_queries():
    """The fast path must not skip Section 4.6's reserved rows."""
    sql_tree = SQLRITree(now=1000)
    sql_tree.insert_infinite(500, 1)
    sql_tree.insert_until_now(900, 2)
    # Backbone is still empty (reserved rows bypass it), but results exist.
    assert sorted(sql_tree.intersection(950, 960)) == [1, 2]
    assert sql_tree.intersection_count(950, 960) == 2
    assert sorted(sql_tree.join_pairs([(950, 960, 77)])) == [(77, 1), (77, 2)]


def test_extend_runs_in_one_transaction():
    sql_tree = SQLRITree()
    statements = []
    sql_tree.conn.set_trace_callback(statements.append)
    sql_tree.extend([(i, i + 5, i) for i in range(50)])
    sql_tree.conn.set_trace_callback(None)
    begins = [s for s in statements if s.strip().upper().startswith("BEGIN")]
    assert len(begins) <= 1
    assert sql_tree.interval_count == 50


def test_harness_join_batch_runs_on_the_sql_backend():
    """run_join_batch drives any IntervalStore; sqlite rows carry no
    engine I/O counters but keep the planner decision and pair count."""
    from repro.bench.harness import run_join_batch

    outer, inner = two_sided(6, outer_n=60, inner_n=400)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    batch = run_join_batch(sql_tree, outer, count_only=True, plan=True)
    assert batch.method == "SQL-RI-tree"
    assert batch.probes == len(outer)
    assert batch.pairs == expected_pair_count(outer, inner)
    assert batch.physical_io == 0 and batch.logical_io == 0
    assert batch.decision["choice"] in ("index-nested-loop", "sweep")
    row = batch.as_row()
    assert row["planner choice"] == batch.decision["choice"]


def test_batch_join_plan_searches_both_indexes(rng):
    records = make_intervals(rng, 500, domain=30_000, mean_length=400)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(records)
    plan = "\n".join(sql_tree.explain_join([(100, 2000, 1), (5000, 9000, 2)]))
    assert "lowerIndex" in plan
    assert "upperIndex" in plan


# ----------------------------------------------------------------------
# predicate joins (one statement, both indexes, engine parity)
# ----------------------------------------------------------------------
def test_sql_predicate_join_matches_engine_and_oracle(rng):
    from repro.core.join import NestedLoopJoin
    from repro.core.predicates import JOIN_PREDICATES

    records = make_intervals(rng, 400, domain=20_000, mean_length=400)
    inner = records[:300]
    probes = [(s, e, 50_000 + i)
              for i, (s, e, _) in enumerate(records[300:])]
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    engine_tree = RITree()
    engine_tree.bulk_load(inner)
    for name in JOIN_PREDICATES:
        expected = sorted(
            NestedLoopJoin(predicate=name).pairs(probes, inner))
        assert sorted(sql_tree.join_pairs(probes, predicate=name)) == \
            expected, name
        assert sql_tree.join_count(probes, predicate=name) == \
            len(expected), name
        assert sorted(engine_tree.join_pairs(probes, predicate=name)) == \
            expected, name


def test_sql_predicate_join_is_one_statement(rng):
    """The acceptance criterion: a predicate-join probe batch is ONE
    SELECT, and EXPLAIN shows both Figure 2 indexes driving the plan
    (no AUTOMATIC index, no base-table scan)."""
    records = make_intervals(rng, 500, domain=30_000, mean_length=400)
    inner = records[:400]
    probes = [(s, e, 60_000 + i)
              for i, (s, e, _) in enumerate(records[400:])]
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    for name in ("before", "during", "equals", "met_by"):
        statements = []
        sql_tree.conn.set_trace_callback(statements.append)
        sql_tree.join_pairs(probes, predicate=name)
        sql_tree.conn.set_trace_callback(None)
        selects = [s for s in statements
                   if s.lstrip().startswith("SELECT")]
        # The probe batch is answered by exactly ONE statement (the one
        # joining the probe relation); before/after additionally read
        # the stored extent (a MIN/MAX aggregate) to bound their
        # candidate ranges -- metadata, not probe evaluation.
        batch_selects = [s for s in selects if "batchProbes" in s]
        assert len(batch_selects) == 1, (name, selects)
        if name in ("before", "after"):
            assert len(selects) == 2, (name, selects)
            assert any('MIN("lower")' in s for s in selects)
        else:
            assert len(selects) == 1, (name, selects)
        plan = "\n".join(sql_tree.explain_join(probes, predicate=name))
        assert "lowerIndex" in plan, (name, plan)
        assert "upperIndex" in plan, (name, plan)
        assert "AUTOMATIC" not in plan, (name, plan)
        assert "SCAN i" not in plan, (name, plan)


def test_sql_predicate_join_count_is_one_statement(rng):
    records = make_intervals(rng, 300, domain=20_000, mean_length=300)
    inner = records[:250]
    probes = [(s, e, 70_000 + i)
              for i, (s, e, _) in enumerate(records[250:])]
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    statements = []
    sql_tree.conn.set_trace_callback(statements.append)
    count = sql_tree.join_count(probes, predicate="overlaps")
    sql_tree.conn.set_trace_callback(None)
    selects = [s for s in statements if s.lstrip().startswith("SELECT")]
    assert len(selects) == 1
    assert count == len(sql_tree.join_pairs(probes, predicate="overlaps"))


def test_sql_predicate_join_handles_reserved_rows():
    """Allen predicate joins on sqlite evaluate reserved Section 4.6
    rows on their *effective* bounds (now-relative uppers read the
    clock through the EFFECTIVE_UPPER rewrite; infinite rows keep the
    +infinity sentinel), matching the engine and the sweep over
    stored_records -- so the auto planner's result set cannot depend on
    which strategy it dispatches."""
    from repro.core.join import NestedLoopJoin
    from repro.core.predicates import JOIN_PREDICATES

    sql_tree = SQLRITree(now=100)
    sql_tree.insert(0, 30, 1)
    sql_tree.insert(40, 60, 2)
    sql_tree.insert_until_now(5, 8)
    sql_tree.insert_infinite(50, 9)
    probes = [(31, 39, 700), (0, 200, 701), (0, 40, 702), (101, 150, 703)]
    effective = sql_tree.stored_records()
    for name in JOIN_PREDICATES:
        expected = sorted(
            NestedLoopJoin(predicate=name).pairs(probes, effective))
        assert sorted(sql_tree.join_pairs(probes, predicate=name)) == \
            expected, name
        assert sorted(
            SweepJoin(predicate=name).pairs(probes, effective)
        ) == expected, name
    # The reviewer regression: 'before' must reach the infinite row
    # whatever strategy the planner picks.
    assert sorted(sql_tree.join_pairs([(0, 40, 700)], predicate="before")) \
        == [(700, 9)]
    auto = AutoJoin(method=sql_tree, predicate="before")
    assert sorted(auto.pairs([(0, 40, 700)], inner=[])) == [(700, 9)]
    # The default (intersection) join reaches the reserved rows too.
    assert sorted(sql_tree.join_pairs([(90, 95, 702)])) == \
        [(702, 8), (702, 9)]


def test_sql_predicate_query_matches_engine_on_temporal_rows():
    """query('after', ...) et al. agree across backends with temporal
    rows present -- incl. the engine's clamped candidate ceiling (no
    duplicate ids from the reserved-node scans)."""
    from repro.core import TemporalRITree
    from repro.core.predicates import PREDICATES

    sql_tree = SQLRITree(now=100)
    engine_tree = TemporalRITree(now=100)
    for store in (sql_tree, engine_tree):
        store.insert(0, 30, 1)
        store.insert(40, 60, 2)
        store.insert_until_now(5, 8)
        store.insert_infinite(50, 9)
    effective = sql_tree.stored_records()
    for name in sorted(PREDICATES):
        if name == "stab":
            continue
        for lower, upper in [(0, 35), (31, 39), (90, 120), (150, 200)]:
            expected = sorted(PREDICATES[name].filter(
                effective, lower, upper))
            got_sql = sorted(sql_tree.query(lower, upper, predicate=name))
            got_engine = sorted(engine_tree.query(lower, upper, predicate=name))
            assert got_sql == expected, (name, lower, upper)
            assert got_engine == expected, (name, lower, upper)
            assert len(got_engine) == len(set(got_engine))


def test_auto_predicate_join_plans_on_the_sql_backend(rng):
    from repro.core.join import NestedLoopJoin

    records = make_intervals(rng, 400, domain=25_000, mean_length=400)
    inner = records[:320]
    probes = [(s, e, 80_000 + i)
              for i, (s, e, _) in enumerate(records[320:])]
    sql_tree = SQLRITree()
    sql_tree.bulk_load(inner)
    for name in ("before", "during"):
        planned = sql_tree.cost_model().estimate_join(
            probes, predicate=name)
        auto = AutoJoin(method=sql_tree, predicate=name)
        pairs = auto.pairs(probes, inner=[])
        assert auto.last_decision.choice == planned.choice
        assert auto.last_dispatch == auto.last_decision.choice
        assert sorted(pairs) == sorted(
            NestedLoopJoin(predicate=name).pairs(probes, inner)), name
