"""Execute the doctest examples embedded in the public API docstrings."""

import doctest

import pytest

import repro.core.join
import repro.core.ritree
import repro.core.strings
import repro.core.temporal
import repro.sql.ritree_sql

MODULES = [
    repro.core.join,
    repro.core.ritree,
    repro.core.strings,
    repro.core.temporal,
    repro.sql.ritree_sql,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    outcome = doctest.testmod(module, verbose=False)
    assert outcome.attempted > 0, f"{module.__name__} has no doctests"
    assert outcome.failed == 0
