"""Join workload generation and the counting/brute-force oracles."""

import pytest

from repro.core.join import NestedLoopJoin
from repro.workloads import joins


def test_join_workload_is_deterministic():
    first = joins.join_workload(50, 80, seed=3)
    second = joins.join_workload(50, 80, seed=3)
    assert first.outer.records == second.outer.records
    assert first.inner.records == second.inner.records
    assert first.name == second.name


def test_sides_are_independent_despite_equal_parameters():
    workload = joins.join_workload(60, 60, outer_d=500, inner_d=500, seed=1)
    outer_shapes = [(lo, up) for lo, up, _ in workload.outer.records]
    inner_shapes = [(lo, up) for lo, up, _ in workload.inner.records]
    assert outer_shapes != inner_shapes


def test_id_spaces_are_disjoint():
    workload = joins.join_workload(40, 70, seed=2)
    outer_ids = {r[2] for r in workload.outer.records}
    inner_ids = {r[2] for r in workload.inner.records}
    assert not outer_ids & inner_ids
    assert min(outer_ids) >= joins.OUTER_ID_OFFSET
    assert max(inner_ids) < joins.OUTER_ID_OFFSET


def test_independent_cardinality_and_duration():
    workload = joins.join_workload(30, 200, outer_d=100, inner_d=4000, seed=5)
    assert workload.outer.n == 30
    assert workload.inner.n == 200
    assert workload.outer.mean_length < workload.inner.mean_length
    assert workload.pair_domain == 30 * 200


def test_distribution_mix():
    workload = joins.join_workload(25, 25, outer_dist="D2", inner_dist="D3", seed=4)
    assert workload.name.startswith("D2(")
    assert "D3(" in workload.name


def test_expected_pair_count_matches_pure_oracle():
    workload = joins.join_workload(45, 90, outer_d=3000, seed=7)
    pure = len(
        NestedLoopJoin().pairs(workload.outer.records, workload.inner.records)
    )
    assert workload.expected_pairs() == pure
    assert workload.selectivity() == pytest.approx(pure / workload.pair_domain)


def test_brute_force_pairs_matches_pure_oracle():
    workload = joins.join_workload(35, 60, seed=9)
    outer, inner = workload.outer.records, workload.inner.records
    assert sorted(joins.brute_force_pairs(outer, inner)) == sorted(
        NestedLoopJoin().pairs(outer, inner)
    )


def test_oracles_on_empty_sides():
    workload = joins.join_workload(20, 30, seed=1)
    records = workload.inner.records
    assert joins.expected_pair_count([], records) == 0
    assert joins.expected_pair_count(records, []) == 0
    assert joins.brute_force_pairs([], records) == []
    assert workload.pair_domain == 600


def test_empty_workload_selectivity():
    workload = joins.join_workload(0, 0, seed=1)
    assert workload.pair_domain == 0
    assert workload.selectivity() == 0.0
    assert workload.expected_pairs() == 0


def test_join_grid_cartesian_product():
    grid = joins.join_grid(
        outer_ns=[10, 20], inner_ns=[50, 100], inner_ds=[500, 1000, 2000],
        seed=3,
    )
    assert len(grid) == 2 * 2 * 3
    shapes = [(w.outer.n, w.inner.n, w.inner.duration_param) for w in grid]
    assert shapes == [
        (o, i, d) for o in (10, 20) for i in (50, 100)
        for d in (500, 1000, 2000)
    ]


def test_join_grid_points_are_independent_samples():
    grid = joins.join_grid(
        outer_ns=[30], inner_ns=[30], inner_ds=[500, 500], seed=1)
    # Same parameters at two grid positions, different derived seeds.
    assert grid[0].inner.records != grid[1].inner.records


def test_join_grid_is_deterministic():
    kwargs = dict(outer_ns=[5, 10], inner_ns=[40], inner_ds=[800], seed=7)
    first = joins.join_grid(**kwargs)
    second = joins.join_grid(**kwargs)
    assert [w.outer.records for w in first] == \
        [w.outer.records for w in second]
    assert [w.inner.records for w in first] == \
        [w.inner.records for w in second]


def test_join_grid_respects_distribution_and_outer_duration():
    grid = joins.join_grid(
        outer_ns=[25], inner_ns=[25], inner_ds=[100], outer_d=4000,
        outer_dist="D2", inner_dist="D3", seed=2,
    )
    workload = grid[0]
    assert workload.outer.name.startswith("D2(")
    assert workload.inner.name.startswith("D3(")
    assert workload.outer.duration_param == 4000
    assert workload.inner.duration_param == 100
