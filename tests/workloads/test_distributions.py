"""Tests for the Table 1 data distributions."""

import numpy as np
import pytest

from repro.workloads import (
    DOMAIN_MAX,
    d1,
    d2,
    d3,
    d3_restricted,
    d4,
    make,
    table1_catalogue,
)


@pytest.mark.parametrize("factory", [d1, d2, d3, d4])
def test_bounds_inside_domain(factory):
    workload = factory(5000, 2000, seed=1)
    lo, hi = workload.bounds()
    assert 0 <= lo
    assert hi <= DOMAIN_MAX
    assert all(lower <= upper for lower, upper, _ in workload.records)
    assert len(workload.records) == 5000


@pytest.mark.parametrize("factory", [d1, d2, d3, d4])
def test_deterministic_under_seed(factory):
    a = factory(1000, 2000, seed=42)
    b = factory(1000, 2000, seed=42)
    c = factory(1000, 2000, seed=43)
    assert a.records == b.records
    assert a.records != c.records


@pytest.mark.parametrize("factory", [d1, d2, d3, d4])
def test_ids_are_dense_and_unique(factory):
    workload = factory(500, 100, seed=0)
    ids = [record[2] for record in workload.records]
    assert ids == list(range(500))


def test_uniform_duration_range():
    """D1/D3 durations are uniform in [0, 2d]: both ends must occur."""
    workload = d1(30_000, 100, seed=7)
    lengths = [upper - lower for lower, upper, _ in workload.records]
    assert min(lengths) == 0
    assert max(lengths) == 200
    assert abs(float(np.mean(lengths)) - 100) < 5


def test_exponential_duration_mean():
    workload = d2(30_000, 500, seed=8)
    lengths = [upper - lower for lower, upper, _ in workload.records]
    assert abs(float(np.mean(lengths)) - 500) < 25
    # Exponential floor produces points (paper Section 6.1 relies on this).
    assert min(lengths) == 0


def test_zero_duration_parameter():
    workload = d2(100, 0, seed=0)
    assert all(lower == upper for lower, upper, _ in workload.records)


def test_poisson_starts_sorted_and_span_domain():
    workload = d4(20_000, 2000, seed=3)
    starts = [lower for lower, _, __ in workload.records]
    assert starts == sorted(starts)
    assert starts[-1] > DOMAIN_MAX * 0.8  # the process spans the domain


def test_uniform_starts_cover_domain():
    workload = d1(20_000, 0, seed=3)
    starts = [lower for lower, _, __ in workload.records]
    assert min(starts) < DOMAIN_MAX * 0.01
    assert max(starts) > DOMAIN_MAX * 0.99


def test_restricted_d3_length_range():
    workload = d3_restricted(5000, 1500, 2500, seed=1)
    lengths = [upper - lower for lower, upper, _ in workload.records]
    assert min(lengths) >= 1500
    assert max(lengths) <= 2500
    _, hi = workload.bounds()
    assert hi <= DOMAIN_MAX


def test_restricted_d3_validation():
    with pytest.raises(ValueError):
        d3_restricted(10, 500, 100)
    with pytest.raises(ValueError):
        d3_restricted(10, 0, DOMAIN_MAX + 1)


def test_make_dispatch():
    workload = make("D2", 100, 50, seed=5)
    assert workload.name.startswith("D2")
    with pytest.raises(ValueError):
        make("D9", 100, 50)


def test_catalogue_contains_all_four():
    names = [w.name for w in table1_catalogue(n=100, d=100)]
    assert len(names) == 4
    assert all(names[i][:2] == f"D{i + 1}" for i in range(4))


def test_negative_parameters_rejected():
    with pytest.raises(ValueError):
        d1(-1, 100)
    with pytest.raises(ValueError):
        d1(10, -5)


def test_mean_length_and_bounds_helpers():
    workload = d1(1000, 300, seed=2)
    assert workload.mean_length == pytest.approx(
        float(np.mean([u - l for l, u, _ in workload.records])))
