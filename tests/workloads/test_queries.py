"""Tests for the query-workload generators."""

import pytest

from repro.workloads import (
    DOMAIN_MAX,
    brute_force_results,
    d1,
    d4,
    measured_selectivity,
    point_queries,
    range_queries,
    sweeping_point_queries,
    window_length_for_selectivity,
)


def test_window_length_formula():
    assert window_length_for_selectivity(0.0, 0) == 0
    # s * T - m - 1 with T = 2^20.
    assert window_length_for_selectivity(0.01, 2000) == \
        round(0.01 * (DOMAIN_MAX + 1) - 2000 - 1)
    # Clamped at zero (point query) when the data is denser than the target.
    assert window_length_for_selectivity(0.001, 50_000) == 0


def test_window_length_validation():
    with pytest.raises(ValueError):
        window_length_for_selectivity(1.5, 0)
    with pytest.raises(ValueError):
        window_length_for_selectivity(-0.1, 0)


def test_range_queries_inside_domain():
    workload = d1(2000, 2000, seed=0)
    queries = range_queries(workload, 0.03, 50, seed=1)
    assert len(queries) == 50
    for lower, upper in queries:
        assert 0 <= lower <= upper <= DOMAIN_MAX


def test_range_query_count_validation():
    workload = d1(100, 100, seed=0)
    with pytest.raises(ValueError):
        range_queries(workload, 0.01, 0)


def test_selectivity_calibration_within_tolerance():
    """Realised selectivity lands within 25% of the target (paper protocol)."""
    workload = d4(20_000, 2000, seed=5)
    for target in (0.005, 0.01, 0.03):
        queries = range_queries(workload, target, 60, seed=9)
        sizes = brute_force_results(workload.records, queries)
        realised = measured_selectivity(sizes, workload.n)
        assert abs(realised - target) / target < 0.25, (target, realised)


def test_point_queries_are_points():
    for lower, upper in point_queries(30, seed=2):
        assert lower == upper
        assert 0 <= lower <= DOMAIN_MAX


def test_sweeping_point_queries():
    queries = sweeping_point_queries([0, 1000, DOMAIN_MAX])
    assert queries[0] == (DOMAIN_MAX, DOMAIN_MAX)
    assert queries[1] == (DOMAIN_MAX - 1000, DOMAIN_MAX - 1000)
    assert queries[2] == (0, 0)
    with pytest.raises(ValueError):
        sweeping_point_queries([-1])
    with pytest.raises(ValueError):
        sweeping_point_queries([DOMAIN_MAX + 1])


def test_brute_force_results_empty_cases():
    assert brute_force_results([], [(0, 1), (2, 3)]) == [0, 0]
    assert measured_selectivity([], 100) == 0.0
    assert measured_selectivity([5], 0) == 0.0


def test_brute_force_results_counts():
    records = [(0, 10, 1), (5, 15, 2), (20, 30, 3)]
    sizes = brute_force_results(records, [(8, 9), (16, 19), (0, 30)])
    assert sizes == [2, 0, 3]
