"""The genomic-style workload: chromosome tiling, skew, duration bands."""

import pytest

from repro.workloads.genomic import (
    CHROMOSOME_SIZES,
    DOMAIN_MAX,
    chromosome_cuts,
    chromosome_slices,
    duration_band,
    genomic,
)


def test_slices_tile_the_domain_exactly():
    slices = chromosome_slices()
    assert slices[0][1] == 0
    assert slices[-1][2] == DOMAIN_MAX
    for (_, _, hi), (_, lo, _) in zip(slices, slices[1:]):
        assert lo == hi + 1
    assert [name for name, _, _ in slices] == [n for n, _ in CHROMOSOME_SIZES]


def test_features_never_cross_slice_boundaries():
    workload = genomic(2000, seed=3)
    slices = chromosome_slices()
    for lower, upper, _ in workload.records:
        home = next((lo, hi) for _, lo, hi in slices if lo <= lower <= hi)
        assert home[0] <= lower <= upper <= home[1]


def test_generator_is_deterministic_per_seed():
    assert genomic(300, seed=5).records == genomic(300, seed=5).records
    assert genomic(300, seed=5).records != genomic(300, seed=6).records


def test_generator_rejects_negative_cardinality():
    with pytest.raises(ValueError):
        genomic(-1)


def test_lengths_are_skewed_two_component():
    records = genomic(3000, seed=1).records
    durations = sorted(upper - lower for lower, upper, _ in records)
    median = durations[len(durations) // 2]
    p95 = durations[int(0.95 * (len(durations) - 1))]
    # Exons dominate the median; the gene component stretches the tail.
    assert p95 > 10 * max(median, 1)


@pytest.mark.parametrize("shard_count", [1, 2, 4, 8, 24])
def test_chromosome_cuts_are_interior_slice_edges(shard_count):
    cuts = chromosome_cuts(shard_count)
    assert len(cuts) == shard_count - 1
    assert cuts == sorted(set(cuts))
    edges = {hi for _, _, hi in chromosome_slices()[:-1]}
    assert set(cuts) <= edges


def test_chromosome_cuts_validates_range():
    with pytest.raises(ValueError):
        chromosome_cuts(0)
    with pytest.raises(ValueError):
        chromosome_cuts(25)


def test_cuts_never_split_a_feature():
    records = genomic(1500, seed=9).records
    for cut in chromosome_cuts(4):
        assert not any(lower <= cut < upper for lower, upper, _ in records)


def test_duration_band_covers_the_requested_mass():
    records = genomic(4000, seed=11).records
    dmin, dmax = duration_band(records, 0.25, 0.75)
    assert dmax is not None
    durations = [upper - lower for lower, upper, _ in records]
    inside = sum(1 for d in durations if dmin <= d <= dmax)
    assert 0.35 <= inside / len(durations) <= 0.65


def test_duration_band_edges():
    records = [(0, d, i) for i, d in enumerate(range(10))]
    assert duration_band(records, 0.0, 1.0) == (0, None)
    assert duration_band([], 0.3, 0.6) == (0, None)
    with pytest.raises(ValueError):
        duration_band(records, 0.8, 0.2)
