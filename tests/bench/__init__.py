"""Test package (enables the relative conftest imports used by the suite)."""
