"""The bench-trajectory pipeline: metric extraction, merge, baseline diff."""

import pytest

from repro.bench import trajectory

SCAN_REPORT = {
    "scale": "tiny",
    "rows": [
        {"path": "count", "results_total": 10, "logical_reads": 100,
         "physical_reads": 40},
        {"path": "count", "results_total": 5, "logical_reads": 50,
         "physical_reads": 20},
        {"path": "per_entry", "results_total": 10, "logical_reads": 100,
         "physical_reads": 40},
    ],
    "summary": {"ritree_worst_ops_ratio": 2.5},
}

JOIN_REPORT = {
    "scale": "tiny",
    "rows": [
        {"strategy": "index-nested-loop", "pairs": 7, "logical_reads": 30,
         "physical_reads": 12},
        {"strategy": "sweep", "pairs": 7, "logical_reads": 8,
         "physical_reads": 8},
        {"strategy": "auto", "pairs": 7, "logical_reads": 8,
         "physical_reads": 8},
        {"strategy": "nested-loop", "pairs": 7, "logical_reads": 0,
         "physical_reads": 0},
    ],
    "summary": {"pairs": 7},
}

CROSSOVER_REPORT = {
    "scale": "tiny",
    "rows": [
        {"measured": {"index-nested-loop": {"physical_reads": 5},
                      "sweep": {"physical_reads": 9}}},
        {"measured": {"index-nested-loop": {"physical_reads": 50},
                      "sweep": {"physical_reads": 9}}},
    ],
    "summary": {"grid_points": 2, "correct_choices": 2,
                "auto_accuracy": 1.0},
}

PREDICATE_REPORT = {
    "scale": "tiny",
    "parity_rows": [],
    "grid_rows": [],
    "summary": {
        "predicates": 14, "pairs_total": 321, "grid_points": 6,
        "correct_choices": 6, "auto_accuracy": 1.0,
        "index_physical_reads": 100, "sweep_physical_reads": 40,
        "sql_one_statement": True, "sql_plans_clean": True,
    },
}

ALL_REPORTS = {
    "scan-throughput": SCAN_REPORT,
    "interval-join": JOIN_REPORT,
    "join-crossover": CROSSOVER_REPORT,
}


def test_extract_metrics_scan_throughput_sums_count_path_only():
    metrics = trajectory.extract_metrics("scan-throughput", SCAN_REPORT)
    assert metrics == {
        "results_total": 15,
        "logical_reads": 150,
        "physical_reads": 60,
        "worst_ops_ratio": 2.5,
    }


def test_extract_metrics_interval_join_covers_all_strategies():
    metrics = trajectory.extract_metrics("interval-join", JOIN_REPORT)
    assert metrics["pairs"] == 7
    assert metrics["index_physical_reads"] == 12
    assert metrics["sweep_physical_reads"] == 8
    assert metrics["auto_physical_reads"] == 8


def test_extract_metrics_crossover():
    metrics = trajectory.extract_metrics("join-crossover", CROSSOVER_REPORT)
    assert metrics == {
        "grid_points": 2,
        "correct_choices": 2,
        "auto_accuracy": 1.0,
        "index_physical_reads": 55,
        "sweep_physical_reads": 18,
    }


def test_extract_metrics_predicate_join():
    metrics = trajectory.extract_metrics("predicate-join", PREDICATE_REPORT)
    assert metrics == {
        "predicates": 14,
        "pairs_total": 321,
        "grid_points": 6,
        "correct_choices": 6,
        "auto_accuracy": 1.0,
        "index_physical_reads": 100,
        "sweep_physical_reads": 40,
        "sql_one_statement": 1,
    }
    # accuracy metrics ratchet (AT_LEAST), counters stay exact
    assert trajectory.METRIC_RULES["auto_accuracy"] == trajectory.AT_LEAST
    assert "pairs_total" not in trajectory.METRIC_RULES


def test_extract_metrics_hint():
    report = {
        "summary": {
            "results_total": 1071,
            "parity_queries": 30,
            "join_probes": 100,
            "pairs": 739,
            "worst_ops_ratio": 18.4532,
            "count_worst_ops_ratio": 20.2091,
            "frame_target_met": True,
        }
    }
    metrics = trajectory.extract_metrics("hint", report)
    assert metrics == {
        "results_total": 1071,
        "parity_queries": 30,
        "pairs": 739,
        "worst_ops_ratio": 18.453,
        "count_worst_ops_ratio": 20.209,
    }
    # frame ratios ratchet (AT_LEAST), parity counters stay exact
    assert trajectory.METRIC_RULES["worst_ops_ratio"] == trajectory.AT_LEAST
    assert (trajectory.METRIC_RULES["count_worst_ops_ratio"]
            == trajectory.AT_LEAST)
    assert "parity_queries" not in trajectory.METRIC_RULES


SERVICE_REPORT = {
    "scale": "tiny",
    "summary": {
        "parity_ok": True,
        "parity_runs": 4,
        "ops": 500,
        "records": 1500,
        "shards": 2,
        "replicas": 162,
        "throughput_low": 777.51,
        "throughput_high": 930.04,
        "scaling_ratio": 1.1962,
        "scaling_target_met": True,
    },
    "latency": {
        "stab": {"p50_ms": 8.7, "p99_ms": 22.2, "count": 60},
        "intersection": {"p50_ms": 8.8, "p99_ms": 38.9, "count": 80},
    },
}


def test_extract_metrics_service():
    metrics = trajectory.extract_metrics("service", SERVICE_REPORT)
    assert metrics["parity_ok"] == 1
    assert metrics["parity_runs"] == 4
    assert metrics["shards"] == 2
    assert metrics["replicas"] == 162
    assert metrics["scaling_target_met"] == 1
    assert metrics["throughput_c1_ops_s"] == 777.5
    assert metrics["throughput_cmax_ops_s"] == 930.0
    assert metrics["scaling_ratio"] == 1.196
    assert metrics["stab_p50_ms"] == 8.7
    assert metrics["intersection_p99_ms"] == 38.9


def test_info_rule_covers_wall_clock_names():
    assert trajectory.metric_rule("stab_p50_ms") == trajectory.INFO
    assert trajectory.metric_rule("throughput_c1_ops_s") == trajectory.INFO
    assert trajectory.metric_rule("scaling_ratio") == trajectory.INFO
    assert trajectory.metric_rule("parity_runs") == trajectory.EXACT
    assert trajectory.metric_rule("replicas") == trajectory.EXACT
    assert trajectory.metric_rule("auto_accuracy") == trajectory.AT_LEAST


def test_info_metrics_never_fail_the_diff():
    merged = trajectory.merge_reports(
        {"service": SERVICE_REPORT}, git_sha="abc")
    baseline = trajectory.strip_baseline(merged)
    current = trajectory.merge_reports(
        {"service": SERVICE_REPORT}, git_sha="def")
    row = current["rows"][0]
    row["metrics"] = dict(row["metrics"])
    # Wall-clock drift (either direction) rides along without failing...
    row["metrics"]["stab_p50_ms"] = 99.9
    row["metrics"]["throughput_cmax_ops_s"] = 1.0
    row["metrics"]["scaling_ratio"] = 0.01
    deltas = trajectory.compare_to_baseline(current, baseline)
    assert trajectory.regressions(deltas) == []
    drifted = next(d for d in deltas if d["metric"] == "stab_p50_ms")
    assert drifted["status"] == "ok" and drifted["current"] == 99.9
    # ...while the deterministic routing facts stay EXACT-gated.
    row["metrics"]["replicas"] = 163
    failures = trajectory.regressions(
        trajectory.compare_to_baseline(current, baseline))
    assert [f["metric"] for f in failures] == ["replicas"]


def test_extract_metrics_unknown_bench():
    with pytest.raises(ValueError, match="unknown benchmark"):
        trajectory.extract_metrics("frisbee", {})


def test_merge_reports_schema():
    merged = trajectory.merge_reports(ALL_REPORTS, git_sha="abc123")
    assert merged["schema"] == "bench-trajectory/v1"
    assert [r["bench"] for r in merged["rows"]] == sorted(ALL_REPORTS)
    for row in merged["rows"]:
        assert set(row) == {"bench", "scale", "metrics", "git_sha"}
        assert row["git_sha"] == "abc123"
        assert row["scale"] == "tiny"


def test_baseline_roundtrip_is_clean():
    merged = trajectory.merge_reports(ALL_REPORTS, git_sha="abc123")
    baseline = trajectory.strip_baseline(merged)
    assert all("git_sha" not in row for row in baseline["rows"])
    deltas = trajectory.compare_to_baseline(merged, baseline)
    assert deltas
    assert trajectory.regressions(deltas) == []
    assert all(d["status"] == "ok" for d in deltas)


def test_exact_metric_drift_is_a_regression_in_both_directions():
    merged = trajectory.merge_reports(ALL_REPORTS, git_sha="abc")
    baseline = trajectory.strip_baseline(merged)
    for drift in (+1, -1):
        current = trajectory.merge_reports(ALL_REPORTS, git_sha="def")
        row = next(r for r in current["rows"]
                   if r["bench"] == "interval-join")
        row["metrics"] = dict(row["metrics"])
        row["metrics"]["pairs"] += drift
        failures = trajectory.regressions(
            trajectory.compare_to_baseline(current, baseline))
        assert [f["metric"] for f in failures] == ["pairs"]


def test_at_least_metric_may_only_improve():
    merged = trajectory.merge_reports(ALL_REPORTS, git_sha="abc")
    baseline = trajectory.strip_baseline(merged)
    current = trajectory.merge_reports(ALL_REPORTS, git_sha="def")
    row = next(r for r in current["rows"] if r["bench"] == "join-crossover")
    row["metrics"] = dict(row["metrics"], auto_accuracy=0.5)
    failures = trajectory.regressions(
        trajectory.compare_to_baseline(current, baseline))
    assert [f["metric"] for f in failures] == ["auto_accuracy"]
    # Improvement passes.
    row["metrics"]["auto_accuracy"] = 1.0
    row["metrics"]["correct_choices"] = 3
    assert trajectory.regressions(
        trajectory.compare_to_baseline(current, baseline)) == []


def test_missing_baseline_row_is_not_a_failure():
    merged = trajectory.merge_reports(ALL_REPORTS, git_sha="abc")
    baseline = {"rows": []}
    deltas = trajectory.compare_to_baseline(merged, baseline)
    assert all(d["status"] == "new" for d in deltas)
    assert trajectory.regressions(deltas) == []


def test_vanished_benchmark_is_a_failure():
    """Dropping a whole bench from the pipeline must not pass the gate."""
    merged = trajectory.merge_reports(ALL_REPORTS, git_sha="abc")
    baseline = trajectory.strip_baseline(merged)
    partial = trajectory.merge_reports(
        {"scan-throughput": SCAN_REPORT}, git_sha="def")
    failures = trajectory.regressions(
        trajectory.compare_to_baseline(partial, baseline))
    assert sorted(f["bench"] for f in failures) == \
        ["interval-join", "join-crossover"]
    assert all(f["metric"] == "*" and f["status"] == "missing"
               for f in failures)


def test_vanished_metric_is_a_failure():
    merged = trajectory.merge_reports(ALL_REPORTS, git_sha="abc")
    baseline = trajectory.strip_baseline(merged)
    current = trajectory.merge_reports(ALL_REPORTS, git_sha="def")
    row = next(r for r in current["rows"] if r["bench"] == "scan-throughput")
    row["metrics"] = {k: v for k, v in row["metrics"].items()
                      if k != "physical_reads"}
    failures = trajectory.regressions(
        trajectory.compare_to_baseline(current, baseline))
    assert [(f["metric"], f["status"]) for f in failures] == \
        [("physical_reads", "missing")]


def test_render_delta_table_is_readable():
    merged = trajectory.merge_reports(ALL_REPORTS, git_sha="abc")
    baseline = trajectory.strip_baseline(merged)
    table = trajectory.render_delta_table(
        trajectory.compare_to_baseline(merged, baseline))
    lines = table.splitlines()
    assert lines[0].split("|")[0].strip() == "bench"
    assert set(lines[1]) <= {"-", " ", "|"}
    assert any("auto_accuracy" in line for line in lines)
    assert all(len(line) == len(lines[0]) for line in lines[1:])