"""Tests for the benchmark harness."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    build_method,
    paper_database,
    run_query_batch,
)
from repro.core import RITree

from ..conftest import make_intervals


def test_paper_database_geometry():
    db = paper_database()
    assert db.disk.block_size == 2048
    assert db.pool.capacity == 200


def test_build_method_bulk_and_dynamic(rng):
    records = make_intervals(rng, 200)
    bulk = build_method(lambda db: RITree(db), records, bulk=True)
    dynamic = build_method(lambda db: RITree(db), records, bulk=False)
    assert bulk.interval_count == dynamic.interval_count == 200
    assert sorted(bulk.intersection(0, 200_000)) == \
        sorted(dynamic.intersection(0, 200_000))


def test_run_query_batch_aggregates(rng):
    records = make_intervals(rng, 500)
    method = build_method(lambda db: RITree(db), records)
    queries = [(0, 50_000), (10_000, 60_000)]
    batch = run_query_batch(method, queries)
    assert batch.queries == 2
    assert batch.results_per_query > 0
    assert batch.physical_io_per_query >= 0
    assert batch.response_time_per_query > 0
    assert 0 < batch.selectivity <= 1
    row = batch.as_row()
    assert row["method"] == "RI-tree"


def test_run_query_batch_rejects_empty(rng):
    method = build_method(lambda db: RITree(db), make_intervals(rng, 10))
    with pytest.raises(ValueError):
        run_query_batch(method, [])


def test_cold_start_clears_cache(rng):
    records = make_intervals(rng, 3000)
    method = build_method(lambda db: RITree(db), records)
    warmup = [(0, 100_000)]
    run_query_batch(method, warmup, cold_start=False)
    warm = run_query_batch(method, warmup, cold_start=False)
    cold = run_query_batch(method, warmup, cold_start=True)
    assert cold.physical_io_per_query >= warm.physical_io_per_query


def test_experiment_result_table():
    result = ExperimentResult(
        experiment_id="figX", title="demo", paper_reference="none",
        columns=["a", "b"])
    result.add_row(a=1, b=2)
    result.add_row(a=3, b=4)
    result.note("a note")
    text = result.to_markdown()
    assert "| a | b |" in text
    assert "| 1 | 2 |" in text
    assert "> a note" in text
    with pytest.raises(ValueError):
        result.add_row(a=1)


def test_experiment_result_series():
    result = ExperimentResult(
        experiment_id="figX", title="demo", paper_reference="none",
        columns=["x", "y", "method"])
    result.add_row(x=1, y=10, method="A")
    result.add_row(x=2, y=20, method="A")
    result.add_row(x=1, y=5, method="B")
    series = result.series("x", "y")
    assert series == {"A": [(1, 10), (2, 20)], "B": [(1, 5)]}
