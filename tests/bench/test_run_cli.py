"""Tests for the ``python -m repro.bench.run`` command line."""

import pytest

from repro.bench.run import main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig13" in out
    assert "ablation-a3" in out


def test_unknown_experiment_rejected(capsys):
    assert main(["not-an-experiment"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_runs_single_experiment_tiny(capsys):
    assert main(["--scale", "tiny", "table1"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "| distribution |" in out
    assert "completed in" in out


def test_runs_ablation_tiny(capsys):
    assert main(["--scale", "tiny", "ablation-a3"]) == 0
    out = capsys.readouterr().out
    assert "minstep" in out


def test_bad_scale_rejected():
    with pytest.raises(SystemExit):
        main(["--scale", "enormous", "table1"])
