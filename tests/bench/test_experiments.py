"""End-to-end smoke tests of every experiment at tiny scale.

These validate row schemas and the always-true structural properties; the
performance-shape assertions live in ``benchmarks/`` where the scale is
large enough to discriminate.
"""

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS, SCALES, get_scale


def test_scales_define_all_knobs():
    required = {"fig12_sizes", "fig13_n", "fig14_sizes", "fig15_n",
                "fig16_n", "fig17_n", "windowlist_n", "tune_sample",
                "ablation_n"}
    for name, scale in SCALES.items():
        missing = required - set(scale)
        assert not missing, (name, missing)


def test_get_scale_resolution(monkeypatch):
    assert get_scale("tiny")["name"] == "tiny"
    monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
    assert get_scale()["name"] == "full"
    with pytest.raises(ValueError):
        get_scale("gigantic")


@pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
def test_experiment_runs_and_emits_rows(experiment_id):
    result = ALL_EXPERIMENTS[experiment_id]("tiny")
    assert result.rows, experiment_id
    for row in result.rows:
        assert set(result.columns) <= set(row)
    markdown = result.to_markdown()
    assert result.experiment_id in markdown


def test_fig12_entry_formulas():
    result = ALL_EXPERIMENTS["fig12"]("tiny")
    for row in result.rows:
        if row["method"] == "RI-tree":
            assert row["index entries"] == 2 * row["db size"]
        if row["method"] == "IST":
            assert row["index entries"] == row["db size"]


def test_fig13_methods_agree_on_result_counts():
    result = ALL_EXPERIMENTS["fig13"]("tiny")
    by_selectivity: dict[float, set] = {}
    for row in result.rows:
        by_selectivity.setdefault(row["selectivity [%]"], set()).add(
            row["avg results"])
    for selectivity, counts in by_selectivity.items():
        assert len(counts) == 1, (selectivity, counts)


def test_fig15_minstep_monotone():
    result = ALL_EXPERIMENTS["fig15"]("tiny")
    rows = sorted(result.rows, key=lambda r: r["min length"])
    minsteps = [r["minstep"] for r in rows]
    assert minsteps == sorted(minsteps)


def test_ablation_a1_equal_results():
    result = ALL_EXPERIMENTS["ablation-a1"]("tiny")
    counts = {row["avg results"] for row in result.rows}
    assert len(counts) == 1


def test_ablation_a4_reserved_height_lower():
    result = ALL_EXPERIMENTS["ablation-a4"]("tiny")
    heights = {row["strategy"]: row["height"] for row in result.rows}
    reserved = next(v for k, v in heights.items() if "reserved" in k)
    naive = next(v for k, v in heights.items() if "naive" in k)
    assert reserved < naive
