"""Tests for now/infinity handling (paper Section 4.6)."""

import pytest

from repro.core import FORK_INF, FORK_NOW, TemporalRITree
from repro.methods import BruteForceIntervals


def test_docstring_example():
    tree = TemporalRITree(now=100)
    tree.insert(10, 20, interval_id=1)
    tree.insert_until_now(50, interval_id=2)
    tree.insert_infinite(80, interval_id=3)
    assert sorted(tree.intersection(90, 95)) == [2, 3]
    tree.advance_to(200)
    assert sorted(tree.intersection(150, 160)) == [2, 3]


def test_infinite_interval_always_reachable_from_any_future_query():
    tree = TemporalRITree()
    tree.insert_infinite(5, 1)
    assert tree.intersection(1_000_000, 2_000_000) == [1]
    assert tree.intersection(0, 4) == []
    assert tree.stab(5) == [1]


def test_now_interval_grows_with_clock():
    tree = TemporalRITree(now=100)
    tree.insert_until_now(50, 1)
    assert tree.intersection(90, 95) == [1]
    assert tree.intersection(101, 200) == []  # query beyond now
    tree.advance_to(150)
    assert tree.intersection(101, 200) == [1]  # now moved past the query


def test_now_injection_condition():
    """FORK_NOW is scanned only when the query begins in the past."""
    tree = TemporalRITree(now=100)
    tree.insert_until_now(10, 1)
    # Query entirely in the future: hook must not fire.
    assert tree.intersection(101, 500) == []
    # Query starting exactly at now: fires.
    assert tree.intersection(100, 500) == [1]


def test_clock_monotonicity():
    tree = TemporalRITree(now=100)
    with pytest.raises(ValueError):
        tree.advance_to(99)
    tree.advance_to(100)  # no-op is fine


def test_now_insert_in_future_rejected():
    tree = TemporalRITree(now=100)
    with pytest.raises(ValueError):
        tree.insert_until_now(101, 1)


def test_reserved_fork_nodes_are_disjoint_from_data_nodes():
    tree = TemporalRITree(now=0)
    tree.insert(0, 2 ** 40, 1)  # pushes the backbone as far as permitted
    assert tree.backbone.right_root < FORK_NOW < FORK_INF


def test_close_now_interval():
    tree = TemporalRITree(now=1000)
    tree.insert_until_now(100, 1)
    tree.close_now_interval(100, 1, upper=500)
    assert tree.now_relative_count == 0
    assert tree.intersection(400, 600) == [1]
    assert tree.intersection(501, 2000) == []


def test_delete_special_intervals():
    tree = TemporalRITree(now=10)
    tree.insert_infinite(1, 1)
    tree.insert_until_now(2, 2)
    tree.delete_infinite(1, 1)
    tree.delete_until_now(2, 2)
    assert tree.intersection(0, 100) == []
    with pytest.raises(KeyError):
        tree.delete_infinite(1, 1)
    with pytest.raises(KeyError):
        tree.delete_until_now(2, 2)


def test_mixed_database_against_brute_force(rng):
    tree = TemporalRITree(now=50_000)
    brute = BruteForceIntervals()
    next_id = 0
    for _ in range(400):
        lower = rng.randrange(0, 40_000)
        kind = rng.randrange(3)
        if kind == 0:
            upper = lower + rng.randrange(0, 2000)
            tree.insert(lower, upper, next_id)
            brute.insert(lower, upper, next_id)
        elif kind == 1:
            tree.insert_infinite(lower, next_id)
            brute.insert(lower, 10 ** 9, next_id)  # effectively infinite
        else:
            tree.insert_until_now(lower, next_id)
            brute.insert(lower, 50_000, next_id)  # upper = now
        next_id += 1
    for _ in range(100):
        lower = rng.randrange(0, 60_000)
        upper = lower + rng.randrange(0, 5000)
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper)), (lower, upper)


def test_advancing_clock_updates_effective_uppers(rng):
    tree = TemporalRITree(now=1000)
    tree.insert_until_now(500, 1)
    records = list(tree.intersection_records(900, 950))
    assert records == [(500, 1000, 1)]
    tree.advance_to(2000)
    records = list(tree.intersection_records(900, 950))
    assert records == [(500, 2000, 1)]


def test_counts():
    tree = TemporalRITree(now=10)
    tree.insert(1, 2, 1)
    tree.insert_infinite(3, 2)
    tree.insert_until_now(4, 3)
    assert tree.interval_count == 3
    assert tree.infinite_count == 1
    assert tree.now_relative_count == 1
