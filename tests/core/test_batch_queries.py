"""Batched RI-tree query execution vs the per-entry reference plan.

``intersection`` (batched) must agree with ``intersection_per_entry``
(the retained pre-batching execution) on results *and* on the exact
logical/physical I/O trace -- the invariant that keeps the Section 6
reproduction honest after the pipeline refactor.
"""

import pytest

from repro.core import RITree
from repro.engine import Database

from ..conftest import make_intervals


@pytest.fixture
def loaded_records(rng):
    return make_intervals(rng, 1500)


@pytest.fixture
def loaded_tree(loaded_records):
    tree = RITree(Database(block_size=512, cache_blocks=32))
    tree.bulk_load(loaded_records)
    tree.db.flush()
    return tree


QUERIES = [(0, 100_000), (40_000, 45_000), (99_000, 120_000), (7, 7),
           (0, 0), (60_000, 60_001), (-50, 10)]


def test_batched_matches_per_entry_results(loaded_tree):
    for lower, upper in QUERIES:
        assert loaded_tree.intersection(lower, upper) == \
            loaded_tree.intersection_per_entry(lower, upper)


def test_batched_matches_per_entry_io(loaded_tree):
    db = loaded_tree.db
    for lower, upper in QUERIES:
        db.clear_cache()
        with db.measure() as per_entry:
            loaded_tree.intersection_per_entry(lower, upper)
        db.clear_cache()
        with db.measure() as batched:
            loaded_tree.intersection(lower, upper)
        assert batched.logical_reads == per_entry.logical_reads
        assert batched.physical_reads == per_entry.physical_reads


def test_intersection_count_matches_len(loaded_tree):
    db = loaded_tree.db
    for lower, upper in QUERIES:
        ids = loaded_tree.intersection(lower, upper)
        db.clear_cache()
        with db.measure() as counted:
            count = loaded_tree.intersection_count(lower, upper)
        assert count == len(ids)
        db.clear_cache()
        with db.measure() as materialised:
            loaded_tree.intersection(lower, upper)
        assert counted.logical_reads == materialised.logical_reads
        assert counted.physical_reads == materialised.physical_reads


def test_intersection_many_matches_single_queries(loaded_tree):
    queries = QUERIES[:4]
    assert loaded_tree.intersection_many(queries) == \
        [loaded_tree.intersection(lower, upper) for lower, upper in queries]


def test_dynamic_tree_parity(rng):
    tree = RITree(Database(block_size=512, cache_blocks=32))
    records = make_intervals(rng, 400)
    for lower, upper, interval_id in records:
        tree.insert(lower, upper, interval_id)
    for lower, upper, _ in records[::37]:
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(tree.intersection_per_entry(lower, upper))
    # Deletions keep the two executions in lockstep.
    for lower, upper, interval_id in records[::5]:
        tree.delete(lower, upper, interval_id)
    for lower, upper, _ in records[::37]:
        assert tree.intersection(lower, upper) == \
            tree.intersection_per_entry(lower, upper)


def test_empty_tree_queries():
    tree = RITree(Database(block_size=512, cache_blocks=32))
    assert tree.intersection(0, 10) == []
    assert tree.intersection_count(0, 10) == 0
    assert tree.intersection_per_entry(0, 10) == []


def test_intersection_records_parity(loaded_tree, loaded_records):
    records = loaded_records
    expected = {(lower, upper, interval_id)
                for lower, upper, interval_id in records}
    got = list(loaded_tree.intersection_records(0, 200_000))
    assert set(got) == expected
    assert len(got) == len(records)
    # Refinement queries agree with id-level intersection.
    for lower, upper in QUERIES[:4]:
        ids = sorted(loaded_tree.intersection(lower, upper))
        rec_ids = sorted(i for _, _, i in
                         loaded_tree.intersection_records(lower, upper))
        assert rec_ids == ids


# ----------------------------------------------------------------------
# coalesced execution
# ----------------------------------------------------------------------
def test_coalesced_execution_same_results_fewer_reads(rng):
    records = make_intervals(rng, 1500)
    plain = RITree(Database(block_size=512, cache_blocks=64))
    plain.bulk_load(records)
    plain.db.flush()
    merged = RITree(Database(block_size=512, cache_blocks=64),
                    coalesce_scans=True)
    merged.bulk_load(records)
    merged.db.flush()
    total_plain = 0
    total_merged = 0
    for lower, upper, _ in records[::23]:
        query = (max(0, lower - 300), upper + 300)
        assert sorted(merged.intersection(*query)) == \
            sorted(plain.intersection(*query))
        with plain.db.measure() as a:
            plain.intersection(*query)
        with merged.db.measure() as b:
            merged.intersection(*query)
        total_plain += a.logical_reads
        total_merged += b.logical_reads
    # Coalescing may only ever remove descents, never add work.
    assert total_merged <= total_plain


def test_coalescing_merges_adjacent_left_node_runs():
    """A crafted query whose left singleton touches the covered range."""
    tree = RITree(Database(block_size=512, cache_blocks=64),
                  coalesce_scans=True)
    # Dense point intervals make every backbone node down to minstep 0
    # reachable, so walks toward odd bounds end at the adjacent node.
    tree.bulk_load([(i, i, i) for i in range(64)])
    tree.db.flush()
    plan = tree._plan(33, 40)
    per_node_ranges = sum(
        1 for node_min, node_max in tree.query_nodes(33, 40).left) + len(
        tree.query_nodes(33, 40).right)
    assert plan is not None
    merged_ranges = len(plan[0]) + len(plan[1])
    assert merged_ranges < per_node_ranges
    reference = RITree(Database(block_size=512, cache_blocks=64))
    reference.bulk_load([(i, i, i) for i in range(64)])
    assert sorted(tree.intersection(33, 40)) == \
        sorted(reference.intersection(33, 40)) == list(range(33, 41))
