"""Property tests: index and sweep joins always match the brute oracle.

Random workloads include degenerate (point) intervals, empty sides, and
-- through :class:`~repro.core.temporal.TemporalRITree` -- the Section
4.6 ``now``/``infinity`` intervals, joined via the index strategy against
an oracle running on the materialised effective bounds.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RITree, TemporalRITree
from repro.core.costmodel import DEFAULT_BUCKETS, choose_join_strategy
from repro.core.join import (
    AutoJoin,
    IndexNestedLoopJoin,
    NestedLoopJoin,
    SweepJoin,
)
from repro.core.predicates import JOIN_PREDICATES
from repro.core.temporal import UPPER_INF
from repro.workloads.joins import expected_pair_count, join_workload

DOMAIN_MAX = 2**20 - 1

#: Small shared-endpoint records: point intervals and shared bounds
#: arise with real probability, the degenerate cases Allen inverses are
#: most sensitive to.
dense_record = st.tuples(
    st.integers(0, 40),
    st.integers(0, 10),
).map(lambda t: (t[0], t[0] + t[1]))

#: Finite records: points (length 0) arise with real probability.
record = st.tuples(
    st.integers(0, DOMAIN_MAX),
    st.integers(0, 5000),
).map(lambda t: (t[0], min(t[0] + t[1], DOMAIN_MAX)))


def _with_ids(intervals, offset):
    return [
        (lower, upper, offset + i)
        for i, (lower, upper) in enumerate(intervals)
    ]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(record, max_size=60), st.lists(record, max_size=60))
def test_index_and_sweep_match_oracle(outer_raw, inner_raw):
    outer = _with_ids(outer_raw, 1000)
    inner = _with_ids(inner_raw, 9000)
    expected = sorted(NestedLoopJoin().pairs(outer, inner))
    assert sorted(SweepJoin().pairs(outer, inner)) == expected
    assert sorted(IndexNestedLoopJoin().pairs(outer, inner)) == expected
    assert SweepJoin().count(outer, inner) == len(expected)
    assert IndexNestedLoopJoin().count(outer, inner) == len(expected)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(record, max_size=40),
    st.lists(st.integers(0, DOMAIN_MAX), max_size=10),
    st.lists(st.integers(0, 60_000), max_size=10),
    st.lists(record, max_size=25),
    st.integers(60_000, DOMAIN_MAX),
)
def test_temporal_join_matches_oracle_on_effective_bounds(
    inner_raw, infinite_lowers, now_lowers, outer_raw, now
):
    """now/infinity intervals join correctly through the reserved nodes.

    The inner side is a TemporalRITree holding finite, ``[s, oo)`` and
    ``[s, now]`` intervals; the oracle (and the sweep) run on the same
    relation with bounds materialised -- ``now`` as the clock value,
    infinity as a bound beyond every probe.  All three must agree.
    """
    tree = TemporalRITree(now=now)
    effective = []
    next_id = 9000
    for lower, upper in inner_raw:
        tree.insert(lower, upper, interval_id=next_id)
        effective.append((lower, upper, next_id))
        next_id += 1
    for lower in infinite_lowers:
        tree.insert_infinite(lower, interval_id=next_id)
        # Any bound beyond the probe domain behaves as +infinity.
        effective.append((lower, 2**40, next_id))
        next_id += 1
    for lower in now_lowers:
        tree.insert_until_now(lower, interval_id=next_id)
        effective.append((lower, now, next_id))
        next_id += 1

    outer = _with_ids(outer_raw, 1000)
    expected = sorted(NestedLoopJoin().pairs(outer, effective))
    assert sorted(SweepJoin().pairs(outer, effective)) == expected
    index_join = IndexNestedLoopJoin(method=tree)
    assert sorted(index_join.pairs(outer, inner=[])) == expected
    assert index_join.count(outer, inner=[]) == len(expected)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(dense_record, max_size=25), st.lists(dense_record, max_size=25))
def test_all_strategies_match_oracle_on_every_join_predicate(
    outer_raw, inner_raw
):
    """Tentpole property: 4 strategies x 14 predicates, identical sets.

    Random workloads with point intervals and shared endpoints; the
    nested-loop oracle (direct formula, outer subject) is ground truth.
    One RI-tree serves every predicate's index probes; auto plans with
    the tree's own cost model.
    """
    outer = _with_ids(outer_raw, 1000)
    inner = _with_ids(inner_raw, 9000)
    tree = RITree()
    tree.bulk_load(inner)
    for name in JOIN_PREDICATES:
        expected = sorted(NestedLoopJoin(predicate=name).pairs(outer, inner))
        assert sorted(SweepJoin(predicate=name).pairs(outer, inner)) == \
            expected, name
        assert sorted(tree.join_pairs(outer, predicate=name)) == \
            expected, name
        assert tree.join_count(outer, predicate=name) == len(expected), name
        auto = AutoJoin(method=tree, predicate=name)
        assert sorted(auto.pairs(outer, inner=[])) == expected, name
        assert auto.last_dispatch == auto.last_decision.choice


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(dense_record, max_size=20),
    st.lists(st.integers(0, 40), max_size=6),
    st.lists(st.integers(0, 30), max_size=6),
    st.lists(dense_record, max_size=15),
    st.integers(30, 60),
)
def test_predicate_joins_handle_temporal_sentinels(
    inner_raw, infinite_lowers, now_lowers, outer_raw, now
):
    """now/infinity rows join correctly under every predicate.

    The inner side is a TemporalRITree holding finite, ``[s, oo)`` and
    ``[s, now]`` intervals; the oracle and the sweep run on the
    effective-bound relation (``now`` materialised to the clock,
    infinity as the ``UPPER_INF`` sentinel -- exactly what
    ``stored_records`` reports).  The index path must agree through the
    reserved-node scans and the leaf-slice refinement.
    """
    tree = TemporalRITree(now=now)
    effective = []
    next_id = 9000
    for lower, upper in inner_raw:
        tree.insert(lower, upper, interval_id=next_id)
        effective.append((lower, upper, next_id))
        next_id += 1
    for lower in infinite_lowers:
        tree.insert_infinite(lower, interval_id=next_id)
        effective.append((lower, UPPER_INF, next_id))
        next_id += 1
    for lower in now_lowers:
        tree.insert_until_now(lower, interval_id=next_id)
        effective.append((lower, now, next_id))
        next_id += 1

    outer = _with_ids(outer_raw, 1000)
    assert sorted(tree.stored_records()) == sorted(effective)
    for name in JOIN_PREDICATES:
        expected = sorted(
            NestedLoopJoin(predicate=name).pairs(outer, effective))
        assert sorted(
            SweepJoin(predicate=name).pairs(outer, tree.stored_records())
        ) == expected, name
        assert sorted(tree.join_pairs(outer, predicate=name)) == \
            expected, name
        assert tree.join_count(outer, predicate=name) == len(expected), name


def _estimate_error_bound(outer_n, inner_n, buckets):
    """The stated accuracy of the convolved pair-count estimate.

    Each CDF lookup is off by at most ~2 quantile-bucket masses (one for
    the boundary rank convention, one for in-bucket interpolation), and
    the join estimate sums two lookups over the cross product:

        |estimate - truth| <= 4 * n_R * n_S / resolution + 2

    where ``resolution`` is the effective bucket count
    ``min(inner_n, buckets) - 1`` (small relations keep every value).
    """
    resolution = max(1, min(inner_n, buckets) - 1)
    return 4.0 * outer_n * inner_n / resolution + 2.0


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(record, max_size=60), st.lists(record, max_size=60))
def test_join_estimate_within_stated_bound(outer_raw, inner_raw):
    """JoinEstimate.result_count lands within the documented error bound."""
    outer = _with_ids(outer_raw, 1000)
    inner = _with_ids(inner_raw, 9000)
    estimate = choose_join_strategy(outer, inner)
    truth = expected_pair_count(outer, inner)
    bound = _estimate_error_bound(len(outer), len(inner), DEFAULT_BUCKETS)
    assert abs(estimate.result_count - truth) <= bound
    assert 0.0 <= estimate.result_count <= len(outer) * len(inner)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(20, 150),
    st.integers(200, 500),
    st.integers(100, 4000),
    st.integers(0, 50),
)
def test_join_estimate_bound_on_generated_workloads(
    outer_n, inner_n, inner_d, seed
):
    """The bound also holds in the quantile regime (buckets < inner_n)."""
    workload = join_workload(outer_n, inner_n, inner_d=inner_d, seed=seed)
    outer, inner = workload.outer.records, workload.inner.records
    buckets = 16
    estimate = choose_join_strategy(outer, inner, buckets=buckets)
    truth = expected_pair_count(outer, inner)
    assert abs(estimate.result_count - truth) <= \
        _estimate_error_bound(outer_n, inner_n, buckets)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(record, max_size=40), st.lists(record, max_size=40))
def test_auto_join_matches_oracle(outer_raw, inner_raw):
    """Whatever the planner picks, auto returns the exact pair set."""
    outer = _with_ids(outer_raw, 1000)
    inner = _with_ids(inner_raw, 9000)
    expected = sorted(NestedLoopJoin().pairs(outer, inner))
    auto = AutoJoin()
    assert sorted(auto.pairs(outer, inner)) == expected
    assert auto.count(outer, inner) == len(expected)
    assert auto.last_decision is not None
    assert auto.last_decision.choice in ("index-nested-loop", "sweep")
