"""Tests for the transient query-node collections (paper Sections 4.2-4.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VirtualBackbone, collect_query_nodes

interval = st.tuples(st.integers(0, 2 ** 16), st.integers(0, 2 ** 12)).map(
    lambda t: (t[0], t[0] + t[1]))


def loaded_backbone(intervals):
    backbone = VirtualBackbone()
    for lower, upper in intervals:
        backbone.register(lower, upper)
    return backbone


def test_empty_backbone_yields_nothing():
    nodes = collect_query_nodes(VirtualBackbone(), 1, 10)
    assert nodes.left == [] and nodes.right == []
    assert nodes.total_entries == 0


def test_between_range_always_last_left_entry():
    backbone = loaded_backbone([(0, 100), (50, 200), (10, 20)])
    nodes = collect_query_nodes(backbone, 30, 90)
    assert nodes.left[-1] == (backbone.shift(30), backbone.shift(90))


def test_singletons_left_of_query_and_right_of_query():
    backbone = loaded_backbone([(0, 0), (1, 1023), (3, 3)])
    nodes = collect_query_nodes(backbone, 300, 400)
    shifted = (backbone.shift(300), backbone.shift(400))
    for node_min, node_max in nodes.left[:-1]:
        assert node_min == node_max
        assert node_min < shifted[0]
    for node in nodes.right:
        assert node > shifted[1]


def test_transient_size_bounded_by_height():
    """O(h) entries: both lists together stay within 2*height + 3."""
    backbone = loaded_backbone(
        [(i, i) for i in range(0, 2 ** 16, 97)])  # points: minstep 0
    height = backbone.height()
    for lower, upper in [(5, 5), (100, 50_000), (2 ** 15, 2 ** 16)]:
        nodes = collect_query_nodes(backbone, lower, upper)
        assert nodes.total_entries <= 2 * height + 3


@settings(max_examples=100, deadline=None)
@given(st.lists(interval, min_size=1, max_size=40), interval)
def test_three_branches_are_disjoint(intervals, query):
    """The sets addressed by leftNodes singletons, the BETWEEN range and
    rightNodes never overlap, so UNION ALL needs no DISTINCT (Section 4.2)."""
    backbone = loaded_backbone(intervals)
    lower, upper = query
    nodes = collect_query_nodes(backbone, lower, upper)
    l, u = backbone.shift(lower), backbone.shift(upper)
    singles = [pair[0] for pair in nodes.left[:-1]]
    assert len(set(singles)) == len(singles)
    assert len(set(nodes.right)) == len(nodes.right)
    for node in singles:
        assert node < l
    for node in nodes.right:
        assert node > u
    assert nodes.left[-1] == (l, u)


@settings(max_examples=100, deadline=None)
@given(st.lists(interval, min_size=1, max_size=40), interval)
def test_collection_covers_every_intersecting_fork(intervals, query):
    """Completeness: each stored interval that intersects the query is
    registered either inside [l, u] or at a collected node."""
    backbone = VirtualBackbone()
    forks = [backbone.register(lower, upper) for lower, upper in intervals]
    lower, upper = query
    nodes = collect_query_nodes(backbone, lower, upper)
    l, u = backbone.shift(lower), backbone.shift(upper)
    singles = {pair[0] for pair in nodes.left[:-1]}
    rights = set(nodes.right)
    for (s, e), fork in zip(intervals, forks):
        if s <= upper and e >= lower:
            assert (l <= fork <= u) or fork in singles or fork in rights, (
                (s, e), query, fork)
