"""The verify() contract: structured reports and corruption detection."""

from __future__ import annotations

import pytest

from repro.core.ritree import RITree
from repro.core.temporal import UPPER_NOW, TemporalRITree
from repro.core.verify import VerificationIssue, VerificationReport
from repro.sql.ritree_sql import SQLRITree


# ----------------------------------------------------------------------
# report semantics
# ----------------------------------------------------------------------
def test_report_truthiness_and_raise():
    report = VerificationReport("S", "backend")
    report.add_check("something")
    assert report.ok and bool(report)
    report.raise_for_issues()
    report.add_issue("bad-thing", "it broke", {"where": 3})
    assert not report.ok and not bool(report)
    with pytest.raises(AssertionError, match="bad-thing"):
        report.raise_for_issues()
    payload = report.as_dict()
    assert payload["ok"] is False
    assert payload["checks"] == ["something"]
    assert payload["issues"][0]["context"] == {"where": 3}


def test_issue_as_dict():
    issue = VerificationIssue("code", "msg")
    assert issue.as_dict() == {"code": "code", "message": "msg", "context": {}}


# ----------------------------------------------------------------------
# clean stores verify clean
# ----------------------------------------------------------------------
def test_ritree_clean_store_verifies():
    tree = RITree()
    tree.bulk_load([(1, 5, 1), (3, 9, 2), (7, 20, 3)])
    tree.insert(2, 4, 4)
    tree.delete(3, 9, 2)
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
    assert "bptree:lowerIndex" in report.checks
    assert "fork-node" in report.checks


def test_temporal_clean_store_verifies():
    tree = TemporalRITree(now=100)
    tree.bulk_load([(1, 5, 1)])
    tree.insert_infinite(50, 2)
    tree.insert_until_now(40, 3)
    tree.advance_to(150)
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
    assert "reserved-rows" in report.checks


def test_sql_clean_store_verifies():
    tree = SQLRITree(now=10)
    tree.bulk_load([(1, 5, 1), (3, 9, 2)])
    tree.insert_infinite(50, 3)
    tree.insert_until_now(7, 4)
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
    assert "sqlite-integrity" in report.checks
    assert "figure2-indexes" in report.checks
    assert "batch-tables-empty" in report.checks


def test_empty_stores_verify():
    assert RITree().verify().ok
    assert TemporalRITree().verify().ok
    assert SQLRITree().verify().ok


# ----------------------------------------------------------------------
# corruption is detected
# ----------------------------------------------------------------------
def test_ritree_detects_wrong_fork_node():
    tree = RITree()
    tree.bulk_load([(1, 5, 1), (3, 9, 2)])
    # Store a row at a node Figure 6 would never pick for these bounds.
    tree._store_at_node(tree.backbone.fork_node(1, 5) + 1, 1, 5, 99)
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "fork-node-mismatch" in codes


def test_ritree_detects_entry_count_drift():
    tree = RITree()
    tree.bulk_load([(i, i + 3, i) for i in range(0, 60, 2)])
    # Remove one lowerIndex entry behind the store's back.
    entry = next(iter(tree._lower_tree.scan_all()))
    tree._lower_tree.delete(entry)
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "index-entry-count" in codes
    assert "missing-index-entry" in codes


def test_temporal_detects_reserved_count_drift():
    tree = TemporalRITree(now=100)
    tree.insert_until_now(10, 1)
    tree._now_count += 1  # counter drifts from the stored rows
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "reserved-count-mismatch" in codes


def test_temporal_detects_sentinel_on_regular_node():
    tree = TemporalRITree(now=100)
    tree.insert(1, 5, 1)
    node = tree.backbone.fork_node(1, 9)
    tree._store_at_node(node, 1, UPPER_NOW, 2)
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "sentinel-on-regular-node" in codes


def test_sql_detects_fork_node_mismatch():
    tree = SQLRITree()
    tree.bulk_load([(1, 5, 1), (3, 9, 2)])
    tree.conn.execute(
        f'INSERT INTO {tree.name} ("node", "lower", "upper", "id") '
        f"VALUES (?, ?, ?, ?)",
        (tree.backbone.fork_node(1, 5) + 1, 1, 5, 99),
    )
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "fork-node-mismatch" in codes


def test_sql_detects_missing_index():
    tree = SQLRITree()
    tree.bulk_load([(1, 5, 1)])
    tree.conn.execute(f"DROP INDEX {tree.name}_upperIndex")
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "missing-index" in codes


def test_sql_detects_stale_params_dictionary():
    tree = SQLRITree()
    tree.bulk_load([(1, 5, 1)])
    tree.conn.execute(
        f'UPDATE {tree.name}_params SET "value" = 12345 '
        f'WHERE "key" = \'right_root\''
    )
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "params-dictionary" in codes


def test_sql_detects_hidden_reserved_rows():
    tree = SQLRITree(now=10)
    tree.insert_until_now(5, 1)
    # Unset the flag behind the store's back: queries would miss the row.
    tree._has_now = False
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "reserved-flag" in codes


def test_sql_detects_stray_batch_rows():
    tree = SQLRITree()
    tree.bulk_load([(1, 5, 1)])
    tree.conn.execute(
        'INSERT INTO batchProbes ("qid", "lower", "upper") VALUES (0, 1, 2)'
    )
    report = tree.verify()
    codes = {issue.code for issue in report.issues}
    assert "stray-batch-rows" in codes


def test_sql_verify_passes_after_batch_cycles():
    tree = SQLRITree()
    tree.bulk_load([(i, i + 5, i) for i in range(0, 40, 2)])
    tree.intersection_many([(0, 10), (20, 30)])
    tree.join_pairs([(3, 8, 77)])
    tree.join_count([(3, 8, 77)], predicate="before")
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
