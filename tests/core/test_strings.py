"""Tests for string intervals (the Section 7 extension)."""

import string as string_module

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import StringIntervalTree, string_code

words = st.text(alphabet=string_module.ascii_lowercase, min_size=0,
                max_size=12)


def test_string_code_is_order_preserving_on_prefixes():
    assert string_code("a") < string_code("b")
    assert string_code("apple") < string_code("banana")
    assert string_code("") < string_code("a")
    assert string_code("abc") <= string_code("abcd")


@settings(max_examples=200, deadline=None)
@given(words, words)
def test_string_code_monotone(a, b):
    if a <= b:
        assert string_code(a) <= string_code(b)
    else:
        assert string_code(a) >= string_code(b)


def test_docstring_example():
    tree = StringIntervalTree()
    tree.insert("baker", "dodgson", interval_id=1)
    tree.insert("adams", "curie", interval_id=2)
    assert sorted(tree.intersection("cantor", "euler")) == [1, 2]


def test_exact_results_despite_prefix_collisions():
    """Bounds sharing a long prefix collapse to one code; refinement must
    keep results exact anyway."""
    tree = StringIntervalTree(prefix_bytes=3)
    tree.insert("abcdef", "abcxyz", interval_id=1)   # same 3-byte code
    tree.insert("abcaaa", "abcbbb", interval_id=2)
    assert tree.code_collision_rate == 1.0
    assert sorted(tree.intersection("abcmmm", "abczzz")) == [1]
    assert sorted(tree.intersection("abcaab", "abcaac")) == [2]
    assert sorted(tree.intersection("abc", "abd")) == [1, 2]


def test_stab_and_disjoint_queries():
    tree = StringIntervalTree()
    tree.insert("dog", "fox", interval_id=7)
    assert tree.stab("emu") == [7]
    assert tree.stab("cat") == []
    assert tree.intersection("goat", "zebra") == []


def test_delete():
    tree = StringIntervalTree()
    tree.insert("a", "m", interval_id=1)
    tree.insert("k", "z", interval_id=2)
    tree.delete("a", "m", 1)
    assert tree.intersection("b", "c") == []
    assert tree.intersection("l", "l") == [2]
    with pytest.raises(KeyError):
        tree.delete("a", "m", 1)
    with pytest.raises(KeyError):
        tree.delete("k", "y", 2)  # wrong bounds


def test_duplicate_id_rejected():
    tree = StringIntervalTree()
    tree.insert("a", "b", interval_id=1)
    with pytest.raises(KeyError):
        tree.insert("c", "d", interval_id=1)


def test_validation():
    tree = StringIntervalTree()
    with pytest.raises(ValueError):
        tree.insert("z", "a", interval_id=1)
    with pytest.raises(TypeError):
        tree.insert(1, "a", interval_id=2)
    with pytest.raises(ValueError):
        StringIntervalTree(prefix_bytes=9)


def test_matches_brute_force_on_random_words(rng):
    tree = StringIntervalTree()
    data = {}
    alphabet = string_module.ascii_lowercase
    for i in range(400):
        a = "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 8)))
        b = "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 8)))
        lower, upper = min(a, b), max(a, b)
        tree.insert(lower, upper, i)
        data[i] = (lower, upper)
    for _ in range(120):
        a = "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 8)))
        b = "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 8)))
        lower, upper = min(a, b), max(a, b)
        expected = sorted(i for i, (s, e) in data.items()
                          if s <= upper and e >= lower)
        assert sorted(tree.intersection(lower, upper)) == expected


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(words, words), max_size=40),
       st.tuples(words, words))
def test_property_equivalence(pairs, query):
    tree = StringIntervalTree()
    data = {}
    for i, (a, b) in enumerate(pairs):
        lower, upper = min(a, b), max(a, b)
        tree.insert(lower, upper, i)
        data[i] = (lower, upper)
    q_lower, q_upper = min(query), max(query)
    expected = sorted(i for i, (s, e) in data.items()
                      if s <= q_upper and e >= q_lower)
    assert sorted(tree.intersection(q_lower, q_upper)) == expected
