"""Unit tests for the interval value type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Interval, validate_interval

bounds = st.integers(-10_000, 10_000)


def test_basic_properties():
    interval = Interval(3, 10)
    assert interval.length == 7
    assert not interval.is_point
    assert str(interval) == "[3, 10]"


def test_point_interval():
    point = Interval(5, 5)
    assert point.is_point
    assert point.length == 0
    assert point.contains_point(5)
    assert not point.contains_point(4)


def test_intersects_cases():
    a = Interval(0, 10)
    assert a.intersects(Interval(10, 20))      # touching endpoints
    assert a.intersects(Interval(-5, 0))
    assert a.intersects(Interval(3, 4))        # contained
    assert a.intersects(Interval(-10, 30))     # containing
    assert not a.intersects(Interval(11, 12))
    assert not a.intersects(Interval(-3, -1))


def test_contains():
    outer = Interval(0, 10)
    assert outer.contains(Interval(0, 10))
    assert outer.contains(Interval(2, 8))
    assert not outer.contains(Interval(-1, 5))
    assert not outer.contains(Interval(5, 11))


def test_validate_rejects_inverted():
    with pytest.raises(ValueError):
        validate_interval(5, 4)


def test_validate_rejects_non_integers():
    with pytest.raises(TypeError):
        validate_interval(1.5, 2)
    with pytest.raises(TypeError):
        validate_interval(1, "2")


@given(bounds, bounds, bounds, bounds)
def test_intersects_is_symmetric(a, b, c, d):
    i1 = Interval(min(a, b), max(a, b))
    i2 = Interval(min(c, d), max(c, d))
    assert i1.intersects(i2) == i2.intersects(i1)


@given(bounds, bounds, bounds)
def test_stab_equals_point_intersection(a, b, p):
    interval = Interval(min(a, b), max(a, b))
    assert interval.contains_point(p) == interval.intersects(Interval(p, p))
