"""The predicate layer: one definition, three evaluations, one answer.

Every predicate must produce the identical id (or pair) set through

* the pure endpoint formula over raw records (the oracle),
* the simulated engine's scan-plan compilation (``RITree.query`` via
  :mod:`repro.core.topology`),
* the sqlite backend's WHERE-clause rewrite (``SQLRITree.query``),
* the HINT store's partition walk + direct-formula refinement
  (``HintStore.query``),

and -- for joins -- through the sweep and nested-loop strategies.
"""

import pytest

from repro.core import (
    JOIN_PREDICATES,
    PREDICATES,
    HintStore,
    RITree,
    get_predicate,
)
from repro.core.join import SweepJoin, interval_join
from repro.core.topology import ALLEN_RELATIONS, relate
from repro.methods.windowlist import WindowList
from repro.sql import SQLRITree


def shared_endpoint_records(rng, count=400, points=80, domain=300):
    """Records clustered on few endpoints, so equality relations fire."""
    anchors = [rng.randrange(0, domain) for _ in range(points)]
    records = []
    for i in range(count):
        start = rng.choice(anchors)
        length = rng.choice([1, 2, 5, rng.randrange(1, 60)])
        records.append((start, start + length, i))
    return anchors, records


def test_registry_is_complete():
    assert set(PREDICATES) == {"intersects", "stab"} | set(ALLEN_RELATIONS)
    assert set(JOIN_PREDICATES) == {"intersects"} | set(ALLEN_RELATIONS)


#: The pinned inverse table of the tentpole: subject-swap per relation.
EXPECTED_INVERSES = {
    "intersects": "intersects",
    "before": "after",
    "after": "before",
    "meets": "met_by",
    "met_by": "meets",
    "overlaps": "overlapped_by",
    "overlapped_by": "overlaps",
    "during": "contains",
    "contains": "during",
    "starts": "started_by",
    "started_by": "starts",
    "finishes": "finished_by",
    "finished_by": "finishes",
    "equals": "equals",
}


def test_inverse_table_is_pinned_and_involutive():
    for name, inverse_name in EXPECTED_INVERSES.items():
        pred = PREDICATES[name]
        assert pred.inverse_name == inverse_name
        assert pred.inverse is PREDICATES[inverse_name]
        assert pred.inverse.inverse is pred
    with pytest.raises(ValueError, match="no inverse"):
        PREDICATES["stab"].inverse


def test_inverse_identity_exhaustive_on_proper_intervals():
    """p.holds(a, b, c, d) == p.inverse.holds(c, d, a, b), exhaustively.

    Exact for every proper-interval pair over a small domain -- Allen's
    algebra.  Degenerate (point) intervals may break the symmetry at
    shared endpoints, which is why the compiled join plans refine with
    the direct formula; pin one such asymmetry so the caveat stays real.
    """
    domain = range(7)
    for name in JOIN_PREDICATES:
        pred = PREDICATES[name]
        inverse = pred.inverse
        for a in domain:
            for b in domain:
                if a >= b:
                    continue
                for c in domain:
                    for d in domain:
                        if c >= d:
                            continue
                        assert pred.holds(a, b, c, d) == \
                            inverse.holds(c, d, a, b), (name, a, b, c, d)
    # The documented degenerate asymmetry: a point meeting an interval.
    meets, met_by = PREDICATES["meets"], PREDICATES["met_by"]
    assert not meets.holds(5, 5, 5, 9)
    assert met_by.holds(5, 9, 5, 5)


def test_get_predicate_resolves_names_and_objects():
    pred = get_predicate("during")
    assert pred.name == "during"
    assert get_predicate(pred) is pred
    with pytest.raises(ValueError):
        get_predicate("sideways")
    with pytest.raises(ValueError):
        get_predicate(None)


def test_holds_agrees_with_the_relate_partition(rng):
    """On proper intervals the 13 formulas partition exactly as relate()."""
    for _ in range(2000):
        s = rng.randrange(0, 100)
        e = s + rng.randrange(1, 30)
        l = rng.randrange(0, 100)
        u = l + rng.randrange(1, 30)
        relation = relate(s, e, l, u)
        for name in ALLEN_RELATIONS:
            assert PREDICATES[name].holds(s, e, l, u) == (relation == name)


def test_matches_and_filter():
    before = get_predicate("before")
    assert before.matches((0, 5), (6, 10))
    assert not before.matches((0, 6), (6, 10))
    records = [(0, 5, 1), (0, 6, 2), (7, 9, 3)]
    assert before.filter(records, 6, 10) == [1]


@pytest.mark.parametrize("name", sorted(PREDICATES))
def test_backends_match_the_oracle(name, rng):
    anchors, records = shared_endpoint_records(rng)
    backends = [RITree(), SQLRITree(), HintStore()]
    for backend in backends:
        backend.bulk_load(records)
    pred = PREDICATES[name]
    for _ in range(40):
        lower = rng.choice(anchors)
        upper = lower + rng.choice([1, 2, 5, rng.randrange(1, 60)])
        if name == "stab":
            expected = sorted(pred.filter(records, lower, lower))
            for backend in backends:
                assert sorted(backend.query(lower, predicate=name)) == expected
        else:
            expected = sorted(pred.filter(records, lower, upper))
            for backend in backends:
                assert sorted(backend.query(lower, upper, predicate=name)) == expected


def test_query_intersects_delegates_to_intersection(rng):
    _anchors, records = shared_endpoint_records(rng, count=120)
    for store in (RITree(), SQLRITree(), HintStore()):
        store.bulk_load(records)
        assert sorted(store.query(50, 90, predicate="intersects")) == sorted(
            store.intersection(50, 90)
        )
        assert sorted(store.query(70, predicate="stab")) == sorted(store.stab(70))


def test_generic_store_falls_back_to_stored_records(rng):
    """A store without a native compile still answers via enumeration."""
    _anchors, records = shared_endpoint_records(rng, count=100)
    store = WindowList()
    store.bulk_load(records)
    if store.stored_records() is None:
        with pytest.raises(NotImplementedError):
            store.query(10, 80, predicate="during")
    else:
        expected = sorted(PREDICATES["during"].filter(records, 10, 80))
        assert sorted(store.query(10, 80, predicate="during")) == expected
    # intersects/stab always work through the intersection machinery.
    assert sorted(store.query(10, 80, predicate="intersects")) == sorted(
        store.intersection(10, 80)
    )


def test_minimal_store_gets_predicates_for_free(rng):
    """A bare-bones IntervalStore inherits a working predicate compile."""
    from repro.core import IntervalStore

    class ListStore(IntervalStore):
        def __init__(self):
            self.records = []

        def insert(self, lower, upper, interval_id):
            self.records.append((lower, upper, interval_id))

        def delete(self, lower, upper, interval_id):
            self.records.remove((lower, upper, interval_id))

        def intersection(self, lower, upper):
            return [i for s, e, i in self.records if s <= upper and e >= lower]

        def stored_records(self):
            return list(self.records)

        @property
        def interval_count(self):
            return len(self.records)

        @property
        def index_entry_count(self):
            return len(self.records)

    _anchors, records = shared_endpoint_records(rng, count=120)
    store = ListStore()
    store.bulk_load(records)
    reference = RITree()
    reference.bulk_load(records)
    for name in ("before", "during", "meets", "equals"):
        assert sorted(store.query(40, 90, predicate=name)) == sorted(
            reference.query(40, 90, predicate=name)
        )


@pytest.mark.parametrize("name", sorted(JOIN_PREDICATES))
def test_join_strategies_match_the_oracle(name, rng):
    """All FOUR strategies emit the pure-formula pair set per predicate."""
    _anchors, records = shared_endpoint_records(rng, count=260)
    outer = records[:120]
    inner = [(s, e, 10_000 + i) for s, e, i in records[120:]]
    pred = PREDICATES[name]
    expected = sorted(
        (r[2], s[2])
        for r in outer
        for s in inner
        if pred.holds(r[0], r[1], s[0], s[1])
    )
    for strategy in ("sweep", "nested-loop", "index", "auto"):
        got = sorted(interval_join(outer, inner, strategy=strategy, predicate=name))
        assert got == expected, (strategy, name)


@pytest.mark.parametrize("name", sorted(JOIN_PREDICATES))
def test_store_join_hooks_take_predicates(name, rng):
    """join_pairs/join_count accept predicates on every backend."""
    _anchors, records = shared_endpoint_records(rng, count=220)
    inner = records[:140]
    probes = [(s, e, 20_000 + i) for s, e, i in records[140:]]
    pred = PREDICATES[name]
    expected = sorted(
        (r[2], s[2])
        for r in probes
        for s in inner
        if pred.holds(r[0], r[1], s[0], s[1])
    )
    for store in (RITree(), SQLRITree(), HintStore()):
        store.bulk_load(inner)
        assert sorted(store.join_pairs(probes, predicate=name)) == expected
        assert store.join_count(probes, predicate=name) == len(expected)


class _ListStore:
    """Minimal enumerable IntervalStore for default-path tests."""

    def __new__(cls):
        from repro.core import IntervalStore

        class ListStore(IntervalStore):
            def __init__(self):
                self.records = []

            def insert(self, lower, upper, interval_id):
                self.records.append((lower, upper, interval_id))

            def delete(self, lower, upper, interval_id):
                self.records.remove((lower, upper, interval_id))

            def intersection(self, lower, upper):
                return [i for s, e, i in self.records
                        if s <= upper and e >= lower]

            def stored_records(self):
                return list(self.records)

            @property
            def interval_count(self):
                return len(self.records)

            @property
            def index_entry_count(self):
                return len(self.records)

        return ListStore()


def test_generic_store_predicate_join_refines_enumerated_records(rng):
    """The IntervalStore default: enumeration + direct-formula refine.

    Exact also on degenerate (point) intervals, because the enumerable
    branch applies the predicate's direct formula.
    """
    _anchors, records = shared_endpoint_records(rng, count=160)
    inner = records[:100] + [(7, 7, 900), (50, 50, 901)]
    probes = [(s, e, 30_000 + i) for s, e, i in records[100:]]
    probes += [(0, 7, 31_000), (50, 50, 31_001)]
    store = _ListStore()
    store.bulk_load(inner)
    for name in ("before", "during", "meets", "equals", "met_by"):
        pred = PREDICATES[name]
        expected = sorted(
            (r[2], s[2])
            for r in probes
            for s in inner
            if pred.holds(r[0], r[1], s[0], s[1])
        )
        assert sorted(store.join_pairs(probes, predicate=name)) == expected
        assert store.join_count(probes, predicate=name) == len(expected)


def test_opaque_store_predicate_join_loops_inverse_queries(rng):
    """Without enumeration, the default loops query() with the inverse."""
    _anchors, records = shared_endpoint_records(rng, count=140)
    inner = records[:90]
    probes = [(s, e, 40_000 + i) for s, e, i in records[90:]]
    store = _ListStore()
    store.bulk_load(inner)
    hidden = store.stored_records()

    queried = []

    class Opaque(type(store)):
        def stored_records(self):
            return None

        def _query_relation(self, pred, lower, upper):
            queried.append(pred.name)
            return pred.filter(hidden, lower, upper)

    opaque = Opaque()
    opaque.bulk_load(inner)
    # Proper intervals only here: the inverse-query path is exact on them.
    pairs = opaque.join_pairs(probes, predicate="before")
    expected = sorted(
        (r[2], s[2]) for r in probes for s in inner if r[1] < s[0]
    )
    assert sorted(pairs) == expected
    # The store was probed with the INVERSE relation (stored-subject).
    assert set(queried) == {"after"}
    assert opaque.join_count(probes, predicate="before") == len(expected)


@pytest.mark.parametrize(
    "name", ["before", "after", "during", "meets", "equals"]
)
def test_sweep_count_matches_pairs(name, rng):
    _anchors, records = shared_endpoint_records(rng, count=200)
    outer = records[:90]
    inner = [(s, e, 5_000 + i) for s, e, i in records[90:]]
    strategy = SweepJoin(predicate=name)
    assert strategy.count(outer, inner) == len(strategy.pairs(outer, inner))


def test_predicate_joins_run_on_every_strategy():
    """The index strategies take predicates too (inverse through
    join_pairs); only 'stab' is rejected -- it is not a join predicate."""
    outer = [(0, 10, 1)]
    inner = [(20, 30, 2)]
    for strategy in ("sweep", "nested-loop", "index", "auto"):
        assert interval_join(outer, inner, strategy=strategy,
                             predicate="before") == [(1, 2)]
        assert interval_join(outer, inner, strategy=strategy,
                             predicate="during") == []
        with pytest.raises(ValueError, match="stab"):
            interval_join(outer, inner, strategy=strategy,
                          predicate="stab")
    # The default predicate is the intersection join on every strategy.
    assert interval_join(outer, inner, strategy="index", predicate="intersects") == []
