"""The predicate layer: one definition, three evaluations, one answer.

Every predicate must produce the identical id (or pair) set through

* the pure endpoint formula over raw records (the oracle),
* the simulated engine's scan-plan compilation (``RITree.query`` via
  :mod:`repro.core.topology`),
* the sqlite backend's WHERE-clause rewrite (``SQLRITree.query``),

and -- for joins -- through the sweep and nested-loop strategies.
"""

import pytest

from repro.core import JOIN_PREDICATES, PREDICATES, RITree, get_predicate
from repro.core.join import SweepJoin, interval_join
from repro.core.topology import ALLEN_RELATIONS, relate
from repro.methods.windowlist import WindowList
from repro.sql import SQLRITree


def shared_endpoint_records(rng, count=400, points=80, domain=300):
    """Records clustered on few endpoints, so equality relations fire."""
    anchors = [rng.randrange(0, domain) for _ in range(points)]
    records = []
    for i in range(count):
        start = rng.choice(anchors)
        length = rng.choice([1, 2, 5, rng.randrange(1, 60)])
        records.append((start, start + length, i))
    return anchors, records


def test_registry_is_complete():
    assert set(PREDICATES) == {"intersects", "stab"} | set(ALLEN_RELATIONS)
    assert set(JOIN_PREDICATES) == {"intersects"} | set(ALLEN_RELATIONS)


def test_get_predicate_resolves_names_and_objects():
    pred = get_predicate("during")
    assert pred.name == "during"
    assert get_predicate(pred) is pred
    with pytest.raises(ValueError):
        get_predicate("sideways")
    with pytest.raises(ValueError):
        get_predicate(None)


def test_holds_agrees_with_the_relate_partition(rng):
    """On proper intervals the 13 formulas partition exactly as relate()."""
    for _ in range(2000):
        s = rng.randrange(0, 100)
        e = s + rng.randrange(1, 30)
        l = rng.randrange(0, 100)
        u = l + rng.randrange(1, 30)
        relation = relate(s, e, l, u)
        for name in ALLEN_RELATIONS:
            assert PREDICATES[name].holds(s, e, l, u) == (relation == name)


def test_matches_and_filter():
    before = get_predicate("before")
    assert before.matches((0, 5), (6, 10))
    assert not before.matches((0, 6), (6, 10))
    records = [(0, 5, 1), (0, 6, 2), (7, 9, 3)]
    assert before.filter(records, 6, 10) == [1]


@pytest.mark.parametrize("name", sorted(PREDICATES))
def test_backends_match_the_oracle(name, rng):
    anchors, records = shared_endpoint_records(rng)
    engine_tree = RITree()
    engine_tree.bulk_load(records)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(records)
    pred = PREDICATES[name]
    for _ in range(40):
        lower = rng.choice(anchors)
        upper = lower + rng.choice([1, 2, 5, rng.randrange(1, 60)])
        if name == "stab":
            expected = sorted(pred.filter(records, lower, lower))
            assert sorted(engine_tree.query(name, lower)) == expected
            assert sorted(sql_tree.query(name, lower)) == expected
        else:
            expected = sorted(pred.filter(records, lower, upper))
            assert sorted(engine_tree.query(name, lower, upper)) == expected
            assert sorted(sql_tree.query(name, lower, upper)) == expected


def test_query_intersects_delegates_to_intersection(rng):
    _anchors, records = shared_endpoint_records(rng, count=120)
    for store in (RITree(), SQLRITree()):
        store.bulk_load(records)
        assert sorted(store.query("intersects", 50, 90)) == sorted(
            store.intersection(50, 90)
        )
        assert sorted(store.query("stab", 70)) == sorted(store.stab(70))


def test_generic_store_falls_back_to_stored_records(rng):
    """A store without a native compile still answers via enumeration."""
    _anchors, records = shared_endpoint_records(rng, count=100)
    store = WindowList()
    store.bulk_load(records)
    if store.stored_records() is None:
        with pytest.raises(NotImplementedError):
            store.query("during", 10, 80)
    else:
        expected = sorted(PREDICATES["during"].filter(records, 10, 80))
        assert sorted(store.query("during", 10, 80)) == expected
    # intersects/stab always work through the intersection machinery.
    assert sorted(store.query("intersects", 10, 80)) == sorted(
        store.intersection(10, 80)
    )


def test_minimal_store_gets_predicates_for_free(rng):
    """A bare-bones IntervalStore inherits a working predicate compile."""
    from repro.core import IntervalStore

    class ListStore(IntervalStore):
        def __init__(self):
            self.records = []

        def insert(self, lower, upper, interval_id):
            self.records.append((lower, upper, interval_id))

        def delete(self, lower, upper, interval_id):
            self.records.remove((lower, upper, interval_id))

        def intersection(self, lower, upper):
            return [i for s, e, i in self.records if s <= upper and e >= lower]

        def stored_records(self):
            return list(self.records)

        @property
        def interval_count(self):
            return len(self.records)

        @property
        def index_entry_count(self):
            return len(self.records)

    _anchors, records = shared_endpoint_records(rng, count=120)
    store = ListStore()
    store.bulk_load(records)
    reference = RITree()
    reference.bulk_load(records)
    for name in ("before", "during", "meets", "equals"):
        assert sorted(store.query(name, 40, 90)) == sorted(
            reference.query(name, 40, 90)
        )


@pytest.mark.parametrize("name", sorted(JOIN_PREDICATES))
def test_join_strategies_match_the_oracle(name, rng):
    _anchors, records = shared_endpoint_records(rng, count=260)
    outer = records[:120]
    inner = [(s, e, 10_000 + i) for s, e, i in records[120:]]
    pred = PREDICATES[name]
    expected = sorted(
        (r[2], s[2])
        for r in outer
        for s in inner
        if pred.holds(r[0], r[1], s[0], s[1])
    )
    sweep = sorted(interval_join(outer, inner, "sweep", predicate=name))
    nested = sorted(interval_join(outer, inner, "nested-loop", predicate=name))
    assert sweep == expected
    assert nested == expected


@pytest.mark.parametrize(
    "name", ["before", "after", "during", "meets", "equals"]
)
def test_sweep_count_matches_pairs(name, rng):
    _anchors, records = shared_endpoint_records(rng, count=200)
    outer = records[:90]
    inner = [(s, e, 5_000 + i) for s, e, i in records[90:]]
    strategy = SweepJoin(predicate=name)
    assert strategy.count(outer, inner) == len(strategy.pairs(outer, inner))


def test_predicate_joins_reject_index_strategies():
    outer = [(0, 10, 1)]
    inner = [(20, 30, 2)]
    with pytest.raises(ValueError):
        interval_join(outer, inner, "index", predicate="before")
    with pytest.raises(ValueError):
        interval_join(outer, inner, "auto", predicate="during")
    with pytest.raises(ValueError):
        interval_join(outer, inner, "sweep", predicate="stab")
    # The default predicate is the intersection join on every strategy.
    assert interval_join(outer, inner, "index", predicate="intersects") == []
    assert interval_join(outer, inner, "sweep", predicate="before") == [(1, 2)]
