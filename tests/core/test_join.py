"""The interval equi-overlap join: three strategies, one pair set."""

import pytest

from repro.bench.harness import run_join_batch
from repro.core import RITree, TemporalRITree
from repro.core.join import (
    JOIN_STRATEGIES,
    AutoJoin,
    IndexNestedLoopJoin,
    NestedLoopJoin,
    SweepJoin,
    interval_join,
)
from repro.methods import WindowList

from ..conftest import make_intervals

STRATEGIES = ["nested-loop", "sweep", "index", "auto"]

OUTER = [(0, 10, 100), (5, 5, 101), (20, 30, 102), (35, 60, 103)]
INNER = [(8, 25, 1), (10, 10, 2), (30, 35, 3), (70, 80, 4)]

#: Hand-checked: overlap over closed intervals, shared endpoints count.
EXPECTED = [
    (100, 1),
    (100, 2),
    (102, 1),
    (102, 3),
    (103, 3),
]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_hand_checked_join(strategy):
    assert sorted(interval_join(OUTER, INNER, strategy=strategy)) == EXPECTED


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_empty_sides(strategy):
    assert interval_join([], INNER, strategy=strategy) == []
    assert interval_join(OUTER, [], strategy=strategy) == []
    assert interval_join([], [], strategy=strategy) == []


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_point_and_touching_intervals(strategy):
    outer = [(5, 5, 1), (10, 20, 2)]
    inner = [(5, 5, 7), (0, 5, 8), (20, 20, 9), (6, 9, 10)]
    expected = [(1, 7), (1, 8), (2, 9)]
    assert sorted(interval_join(outer, inner, strategy=strategy)) == expected


def test_unknown_strategy_raises():
    with pytest.raises(ValueError, match="unknown join strategy"):
        interval_join(OUTER, INNER, strategy="hash")


def test_unknown_strategy_message_dedupes_aliases():
    """The 'index' alias must not masquerade as a distinct strategy."""
    from repro.core.join import STRATEGY_NAMES

    assert STRATEGY_NAMES == (
        "auto", "index-nested-loop", "nested-loop", "sweep",
    )
    with pytest.raises(ValueError) as exc:
        interval_join(OUTER, INNER, strategy="hash")
    message = str(exc.value)
    assert str(list(STRATEGY_NAMES)) in message
    assert "alias" in message


def test_strategy_registry_covers_all_names():
    assert set(JOIN_STRATEGIES) == {
        "nested-loop",
        "sweep",
        "index",
        "index-nested-loop",
        "auto",
    }


def test_random_parity_across_strategies(rng):
    outer = make_intervals(rng, 120, domain=20_000, mean_length=400)
    inner = [
        (lower, upper, 10_000 + i)
        for i, (lower, upper, _) in enumerate(
            make_intervals(rng, 150, domain=20_000, mean_length=700)
        )
    ]
    expected = sorted(NestedLoopJoin().pairs(outer, inner))
    assert sorted(SweepJoin().pairs(outer, inner)) == expected
    assert sorted(IndexNestedLoopJoin().pairs(outer, inner)) == expected


def test_sweep_count_matches_pairs(rng):
    outer = make_intervals(rng, 80, domain=5000, mean_length=300)
    inner = [
        (lo, up, 900 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 90, domain=5000, mean_length=300)
        )
    ]
    sweep = SweepJoin()
    assert sweep.count(outer, inner) == len(sweep.pairs(outer, inner))


def test_sweep_validates_inputs():
    with pytest.raises(ValueError):
        SweepJoin().pairs([(5, 3, 1)], INNER)
    with pytest.raises(ValueError):
        SweepJoin().pairs(OUTER, [(5, 3, 1)])
    with pytest.raises(ValueError):
        NestedLoopJoin().pairs([(5, 3, 1)], INNER)


def test_ritree_join_pairs_matches_base_loop(rng):
    inner = make_intervals(rng, 200, domain=50_000, mean_length=800)
    probes = [
        (lo, up, 5000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 40, domain=50_000, mean_length=2000)
        )
    ]
    tree = RITree()
    tree.bulk_load(inner)
    via_batches = tree.join_pairs(probes)
    via_loop = []
    for lower, upper, probe_id in probes:
        via_loop.extend(
            (probe_id, interval_id)
            for interval_id in tree.intersection(lower, upper)
        )
    assert sorted(via_batches) == sorted(via_loop)
    assert tree.join_count(probes) == len(via_batches)


def test_ritree_join_io_matches_per_probe_queries(rng):
    """The acceptance criterion: join I/O goes through the same IoStats
    counters -- and adds up to exactly the per-probe Figure 13 scans."""
    inner = make_intervals(rng, 300, domain=60_000, mean_length=600)
    probes = [
        (lo, up, 9000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 25, domain=60_000, mean_length=1500)
        )
    ]
    tree = RITree()
    tree.bulk_load(inner)
    tree.db.flush()

    tree.db.clear_cache()
    with tree.db.measure() as join_io:
        joined = tree.join_count(probes)

    tree.db.clear_cache()
    with tree.db.measure() as query_io:
        queried = sum(tree.intersection_count(lo, up) for lo, up, _ in probes)

    assert joined == queried
    assert join_io.logical_reads == query_io.logical_reads
    assert join_io.physical_reads == query_io.physical_reads
    assert join_io.logical_reads > 0


def test_join_pairs_against_prebuilt_temporal_tree():
    tree = TemporalRITree(now=100)
    tree.insert(10, 20, interval_id=1)
    tree.insert_until_now(50, interval_id=2)  # effectively [50, 100]
    tree.insert_infinite(80, interval_id=3)   # [80, oo)
    probes = [(15, 60, 500), (90, 95, 501), (200, 300, 502)]
    join = IndexNestedLoopJoin(method=tree)
    pairs = sorted(join.pairs(probes, inner=[]))
    assert pairs == [(500, 1), (500, 2), (501, 2), (501, 3), (502, 3)]
    assert join.count(probes, inner=[]) == len(pairs)


def test_windowlist_count_and_join_adapter(rng):
    records = make_intervals(rng, 150, domain=30_000, mean_length=500)
    wl = WindowList()
    wl.bulk_load(records)
    # Post-build updates exercise the overflow and tombstone paths.
    wl.insert(1000, 4000, interval_id=7000)
    wl.delete(*records[3])
    probes = [
        (lo, up, 8000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 20, domain=30_000, mean_length=1200)
        )
    ]
    for lower, upper, _ in probes:
        assert wl.intersection_count(lower, upper) == len(
            wl.intersection(lower, upper)
        )
    expected = []
    for lower, upper, probe_id in probes:
        expected.extend(
            (probe_id, interval_id)
            for interval_id in wl.intersection(lower, upper)
        )
    assert sorted(wl.join_pairs(probes)) == sorted(expected)
    assert wl.join_count(probes) == len(expected)


def test_auto_join_records_its_decision(rng):
    outer = make_intervals(rng, 30, domain=20_000, mean_length=500)
    inner = [
        (lo, up, 5000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 60, domain=20_000, mean_length=500)
        )
    ]
    auto = AutoJoin()
    assert auto.last_decision is None
    pairs = auto.pairs(outer, inner)
    assert auto.last_decision is not None
    decision = auto.last_decision
    assert decision.choice in ("index-nested-loop", "sweep")
    assert sorted(pairs) == sorted(NestedLoopJoin().pairs(outer, inner))
    # Counting re-plans (inputs may have changed between calls).
    assert auto.count(outer, inner) == len(pairs)


def test_auto_join_with_prebuilt_method_consults_its_model(rng):
    inner = make_intervals(rng, 150, domain=30_000, mean_length=600)
    probes = [
        (lo, up, 7000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 10, domain=30_000, mean_length=900)
        )
    ]
    tree = RITree()
    tree.bulk_load(inner)
    tree.db.flush()
    auto = AutoJoin(method=tree)
    pairs = auto.pairs(probes, inner=[])
    expected = []
    for lower, upper, probe_id in probes:
        expected.extend(
            (probe_id, interval_id)
            for interval_id in tree.intersection(lower, upper)
        )
    assert sorted(pairs) == sorted(expected)
    # The decision came from the tree's own (index-sourced) cost model.
    assert auto.last_decision.inner_n == len(inner)


class _OpaqueOverlapStore:
    """An IntervalStore that can answer probes but not enumerate itself."""

    def __new__(cls, records):
        from repro.core import IntervalStore

        class Opaque(IntervalStore):
            method_name = "opaque"

            def __init__(self):
                self._records = list(records)

            def insert(self, lower, upper, interval_id):
                self._records.append((lower, upper, interval_id))

            def delete(self, lower, upper, interval_id):
                self._records.remove((lower, upper, interval_id))

            def intersection(self, lower, upper):
                return [i for s, e, i in self._records
                        if s <= upper and e >= lower]

            @property
            def interval_count(self):
                return len(self._records)

            @property
            def index_entry_count(self):
                return len(self._records)

        return Opaque()


def test_auto_join_reports_dispatch_on_cannot_enumerate_fallback():
    """Satellite bugfix: when the planner picks sweep but the method
    cannot enumerate its records, the join degrades to index-nested-loop
    -- and last_dispatch must say so while last_decision keeps the
    planner's (sweep) verdict."""
    from repro.workloads import join_workload
    from repro.workloads.joins import expected_pair_count

    # The pinned sweep-favored crossover workload (cf. test_costmodel).
    workload = join_workload(1000, 2000, seed=4)
    outer, inner = workload.outer.records, workload.inner.records
    store = _OpaqueOverlapStore(inner)
    assert store.cost_model() is None
    assert store.stored_records() is None
    auto = AutoJoin(method=store)
    assert auto.last_dispatch is None
    count = auto.count(outer, inner)
    assert auto.last_decision.choice == "sweep"
    assert auto.last_dispatch == "index-nested-loop"
    assert count == expected_pair_count(outer, inner)


def test_auto_join_dispatch_matches_choice_when_enumerable(rng):
    """On every non-fallback path the two fields agree."""
    outer = make_intervals(rng, 40, domain=10_000, mean_length=300)
    inner = [
        (lo, up, 5000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 60, domain=10_000, mean_length=300)
        )
    ]
    auto = AutoJoin()
    auto.pairs(outer, inner)
    assert auto.last_dispatch == auto.last_decision.choice
    tree = RITree()
    tree.bulk_load(inner)
    prebuilt = AutoJoin(method=tree)
    prebuilt.pairs(outer, inner=[])
    assert prebuilt.last_dispatch == prebuilt.last_decision.choice


def test_auto_join_sweep_choice_recovers_stored_records(rng):
    """A prebuilt inner index, planner picks sweep: records are recovered."""
    inner = make_intervals(rng, 80, domain=10_000, mean_length=400)
    probes = [
        (lo, up, 9000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 40, domain=10_000, mean_length=400)
        )
    ]
    tree = RITree()
    tree.bulk_load(inner)
    auto = AutoJoin(method=tree)
    strategy, records = auto._plan(probes, inner=[])
    if auto.last_decision.choice == "sweep":
        assert isinstance(strategy, SweepJoin)
        assert sorted(records) == sorted(inner)
    else:
        assert isinstance(strategy, IndexNestedLoopJoin)
    # Either way the evaluated join is exact.
    assert sorted(auto.pairs(probes, inner=[])) == sorted(
        NestedLoopJoin().pairs(probes, inner)
    )


def test_auto_join_prebuilt_method_ignores_inner_argument(rng):
    """With a prebuilt method, the stored relation is the inner side for
    BOTH strategies -- a conflicting ``inner`` argument must not leak in."""
    inner = make_intervals(rng, 60, domain=8000, mean_length=300)
    decoy = [(0, 8000, 777)]  # would join with everything
    probes = [
        (lo, up, 9100 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 30, domain=8000, mean_length=300)
        )
    ]
    tree = RITree()
    tree.bulk_load(inner)
    auto = AutoJoin(method=tree)
    expected = sorted(NestedLoopJoin().pairs(probes, inner))
    assert sorted(auto.pairs(probes, inner=decoy)) == expected
    assert auto.count(probes, inner=decoy) == len(expected)


def test_ritree_stored_records_roundtrip(rng):
    records = make_intervals(rng, 50, domain=5000, mean_length=200)
    tree = RITree()
    tree.bulk_load(records)
    assert sorted(tree.stored_records()) == sorted(records)


def test_cost_model_is_cached_and_refreshable():
    tree = RITree()
    tree.bulk_load([(0, 10, 1), (5, 20, 2)])
    model = tree.cost_model()
    assert model is tree.cost_model()
    assert model.summary.count == 2
    tree.insert(30, 40, 3)
    assert tree.cost_model().summary.count == 2  # stale until refreshed
    assert tree.cost_model(refresh=True).summary.count == 3


def test_run_join_batch_reports_join_measurements(rng):
    inner = make_intervals(rng, 250, domain=40_000, mean_length=500)
    probes = [
        (lo, up, 3000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 15, domain=40_000, mean_length=1000)
        )
    ]
    tree = RITree()
    tree.bulk_load(inner)
    tree.db.flush()
    batch = run_join_batch(tree, probes)
    assert batch.method == "RI-tree"
    assert batch.probes == len(probes)
    assert batch.pairs == len(NestedLoopJoin().pairs(probes, inner))
    assert batch.logical_io > 0
    assert batch.physical_io >= 0
    assert batch.decision is None
    row = batch.as_row()
    assert row["pairs"] == batch.pairs
    assert row["I/O per pair"] == round(batch.io_per_pair, 4)
    assert "planner choice" not in row


def test_run_join_batch_with_planner_decision(rng):
    """plan=True rides the cost model's prediction along on the row."""
    inner = make_intervals(rng, 200, domain=30_000, mean_length=500)
    probes = [
        (lo, up, 4000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 12, domain=30_000, mean_length=800)
        )
    ]
    tree = RITree()
    tree.bulk_load(inner)
    tree.db.flush()
    batch = run_join_batch(tree, probes, plan=True)
    assert batch.decision is not None
    assert batch.decision["choice"] in ("index-nested-loop", "sweep")
    assert batch.decision["outer_n"] == len(probes)
    row = batch.as_row()
    assert row["planner choice"] == batch.decision["choice"]
    assert row["predicted physical I/O"] > 0
    # Planning must not change the measurement itself.
    unplanned = run_join_batch(tree, probes)
    assert unplanned.pairs == batch.pairs
    assert unplanned.logical_io == batch.logical_io
    assert unplanned.physical_io == batch.physical_io


def test_run_join_batch_plan_without_model_is_noop(rng):
    """Methods without a cost model run planless (decision stays None)."""
    from repro.methods import WindowList

    records = make_intervals(rng, 100, domain=20_000, mean_length=400)
    wl = WindowList()
    wl.bulk_load(records)
    probes = [(100, 5000, 1), (8000, 9000, 2)]
    batch = run_join_batch(wl, probes, plan=True)
    assert batch.decision is None


def test_run_join_batch_runs_predicate_joins(rng):
    """The harness drives predicate joins and surfaces plan + dispatch."""
    from repro.core.join import NestedLoopJoin as Oracle

    inner = make_intervals(rng, 200, domain=30_000, mean_length=500)
    probes = [
        (lo, up, 6000 + i)
        for i, (lo, up, _) in enumerate(
            make_intervals(rng, 15, domain=30_000, mean_length=800)
        )
    ]
    tree = RITree()
    tree.bulk_load(inner)
    tree.db.flush()
    batch = run_join_batch(tree, probes, predicate="during", plan=True)
    assert batch.pairs == len(
        Oracle(predicate="during").pairs(probes, inner)
    )
    assert batch.predicate == "during"
    assert batch.logical_io > 0
    assert batch.decision["choice"] in ("index-nested-loop", "sweep")
    row = batch.as_row()
    assert row["predicate"] == "during"
    # The harness always measures the store's own (index) join path;
    # the row says so next to the planner's choice.
    assert row["dispatched"] == "index-nested-loop"
    assert row["planner choice"] == batch.decision["choice"]
    # Pair path agrees with count path under a predicate.
    pairs_batch = run_join_batch(
        tree, probes, predicate="during", count_only=False
    )
    assert pairs_batch.pairs == batch.pairs
    assert pairs_batch.logical_io == batch.logical_io
