"""HINT-specific structure tests: the invariants behind the fast walks.

The shared conformance suite (test_store_conformance.py) already proves
the :class:`~repro.core.hint.HintStore` answers like every other
backend; this module pins the *structural* claims the comparison-free
walks rest on -- the partition-assignment rule, the single-original
dedup flag, domain refits, the temporal side lists, corruption
detection through ``verify()``, and the zero-physical-read cost model.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import UPPER_INF, AutoJoin, HintStore, RITree
from repro.core.hint import HintCostModel
from repro.core.predicates import PREDICATES
from repro.methods.memory import BruteForceIntervals

from ..conftest import make_intervals

record = st.tuples(
    st.integers(0, 2**20 - 1), st.integers(0, 5000), st.integers(0, 10_000)
).map(lambda t: (t[0], min(t[0] + t[1], 2**20 - 1), t[2]))


def _cell_range(store, lower, upper):
    a = (lower - store._offset) >> store._shift
    b = (upper - store._offset) >> store._shift
    return a, b


# ----------------------------------------------------------------------
# partition-assignment invariants (the hypothesis property of the issue)
# ----------------------------------------------------------------------
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(record, min_size=1, max_size=40), st.integers(2, 12))
def test_assignment_invariants(records, levels):
    store = HintStore(levels=levels)
    store.bulk_load(records)
    assert store.verify().ok
    for lower, upper, _interval_id in records:
        a, b = _cell_range(store, lower, upper)
        assert 0 <= a <= b < store._size
        assignments = store._assignments(a, b)
        # At most two partitions per level.
        per_level = {}
        for level, pid, _orig in assignments:
            per_level.setdefault(level, []).append(pid)
        assert all(len(pids) <= 2 for pids in per_level.values())
        # Exactly one original, and it contains the start cell.
        originals = [(level, pid) for level, pid, orig in assignments
                     if orig]
        assert len(originals) == 1
        level, pid = originals[0]
        assert a >> (store.levels - level) == pid
        # Assigned extents tile [a, b] exactly, without overlap.
        cells = []
        for level, pid, _orig in assignments:
            width = 1 << (store.levels - level)
            cells.extend(range(pid * width, (pid + 1) * width))
        assert sorted(cells) == list(range(a, b + 1))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(record, max_size=50), st.data())
def test_mutations_preserve_structure_and_answers(records, data):
    store = HintStore(levels=6)
    store.bulk_load(records)
    assert store.verify().ok
    remaining = list(records)
    deletions = data.draw(
        st.integers(0, len(remaining))) if remaining else 0
    for _ in range(deletions):
        rec = remaining.pop()
        store.delete(*rec)
        assert store.verify().ok
    for lower, upper in ((0, 2**21), (1000, 5000), (2**19, 2**19)):
        expected = sorted(
            i for s, e, i in remaining if s <= upper and lower <= e)
        assert sorted(store.intersection(lower, upper)) == expected


def test_domain_refit_preserves_answers(rng):
    store = HintStore(levels=8)
    records = make_intervals(rng, 300, domain=5_000, mean_length=80)
    store.bulk_load(records)
    before = sorted(store.intersection(0, 6_000))
    # Way outside the fitted coverage on both sides: two refits.
    store.insert(1_000_000, 1_000_500, 777_001)
    store.insert(-2_000_000, -1_999_000, 777_002)
    assert store.verify().ok
    assert sorted(store.intersection(0, 6_000)) == before
    assert store.intersection(1_000_100, 1_000_200) == [777_001]
    assert store.intersection(-1_999_900, -1_999_800) == [777_002]
    oracle = BruteForceIntervals(
        records + [(1_000_000, 1_000_500, 777_001),
                   (-2_000_000, -1_999_000, 777_002)])
    for _ in range(60):
        lower = rng.randrange(-2_100_000, 1_100_000)
        upper = lower + rng.randrange(0, 10_000)
        assert sorted(store.intersection(lower, upper)) == sorted(
            oracle.intersection(lower, upper))


def test_levels_parameter_is_validated():
    with pytest.raises(ValueError):
        HintStore(levels=0)
    with pytest.raises(ValueError):
        HintStore(levels=25)
    shallow = HintStore(levels=1)
    shallow.bulk_load([(0, 10, 1), (5, 80, 2), (70, 90, 3)])
    assert sorted(shallow.intersection(6, 9)) == [1, 2]
    assert shallow.verify().ok


def test_structure_summary(rng):
    store = HintStore()
    records = make_intervals(rng, 200, domain=50_000, mean_length=500)
    store.bulk_load(records)
    occupancy = store.level_occupancy()
    assert len(occupancy) == store.levels + 1
    total_entries = sum(entries for _parts, entries in occupancy)
    assert total_entries == store.index_entry_count
    assert store.partition_count == sum(p for p, _e in occupancy)
    assert store.redundancy >= 1.0


# ----------------------------------------------------------------------
# temporal sentinels
# ----------------------------------------------------------------------
def test_temporal_rows_behave_like_the_temporal_tree(rng):
    now = 5_000
    store = HintStore(now=now)
    finite = make_intervals(rng, 120, domain=9_000, mean_length=300)
    store.bulk_load(finite)
    store.insert_infinite(2_000, 90_001)
    store.insert(3_000, UPPER_INF, 90_002)  # sentinel routing via insert
    store.insert_until_now(1_000, 90_003)
    assert store.infinite_count == 2
    assert store.now_relative_count == 1
    assert store.verify().ok

    def effective():
        rows = list(finite)
        rows += [(2_000, UPPER_INF, 90_001), (3_000, UPPER_INF, 90_002)]
        rows += [(1_000, store.now, 90_003)]
        return rows

    oracle = BruteForceIntervals(effective())
    for _ in range(50):
        lower = rng.randrange(0, 12_000)
        upper = lower + rng.randrange(0, 2_000)
        assert sorted(store.intersection(lower, upper)) == sorted(
            oracle.intersection(lower, upper))
    assert sorted(store.stored_records()) == sorted(effective())

    store.advance_to(8_000)
    oracle = BruteForceIntervals(effective())
    assert sorted(store.intersection(7_000, 7_500)) == sorted(
        oracle.intersection(7_000, 7_500))
    with pytest.raises(ValueError):
        store.advance_to(7_999)
    with pytest.raises(ValueError):
        store.insert_until_now(8_001, 90_004)

    for name in sorted(PREDICATES):
        if name == "stab":
            continue
        pred = PREDICATES[name]
        expected = sorted(pred.filter(effective(), 2_500, 4_000))
        assert sorted(store.query(2_500, 4_000, predicate=name)) == expected, name

    store.close_now_interval(1_000, 90_003, 6_000)
    assert store.now_relative_count == 0
    assert (1_000, 6_000, 90_003) in store.stored_records()
    store.delete(2_000, UPPER_INF, 90_001)  # sentinel routing via delete
    store.delete_infinite(3_000, 90_002)
    assert store.infinite_count == 0
    with pytest.raises(KeyError):
        store.delete_infinite(3_000, 90_002)
    assert store.verify().ok


def test_temporal_join_parity(rng):
    now = 400
    store = HintStore(now=now)
    finite = make_intervals(rng, 80, domain=800, mean_length=60)
    store.bulk_load(finite)
    store.insert_infinite(100, 70_001)
    store.insert_until_now(50, 70_002)
    rows = finite + [(100, UPPER_INF, 70_001), (50, now, 70_002)]
    probes = [(rng.randrange(0, 900), 0, 80_000 + k) for k in range(40)]
    probes = [(lo, lo + rng.randrange(0, 200), i) for lo, _, i in probes]
    for name in ("intersects", "before", "after", "during", "overlaps"):
        pred = PREDICATES[name]
        expected = sorted(
            (pid, i) for pl, pu, pid in probes
            for s, e, i in rows if pred.holds(pl, pu, s, e))
        got = sorted(store.join_pairs(
            probes, predicate=None if name == "intersects" else name))
        assert got == expected, name


# ----------------------------------------------------------------------
# corruption detection
# ----------------------------------------------------------------------
def _loaded_store(rng):
    store = HintStore()
    store.bulk_load(make_intervals(rng, 80, domain=10_000, mean_length=200))
    assert store.verify().ok
    return store


def _nonempty_partition(store):
    for parts in store._levels:
        for part in parts.values():
            if part[0].s_ids:
                return part
    raise AssertionError("no populated partition")


def test_verify_detects_misplaced_entry(rng):
    store = _loaded_store(rng)
    part = _nonempty_partition(store)
    part[0].add(1, 2, 999_999)  # never registered: assignment mismatch
    report = store.verify()
    assert not report.ok
    assert any(i.code in ("partition-assignment", "entry-count-mismatch")
               for i in report.issues)


def test_verify_detects_dropped_entry(rng):
    store = _loaded_store(rng)
    part = _nonempty_partition(store)
    bucket = part[0]
    bucket.remove(bucket.s_lowers[0], bucket.s_uppers[0], bucket.s_ids[0])
    report = store.verify()
    assert not report.ok
    assert any(i.code in ("partition-assignment", "entry-count-mismatch")
               for i in report.issues)


def test_verify_detects_unsorted_view(rng):
    store = _loaded_store(rng)
    for parts in store._levels:
        for part in parts.values():
            if len(part[0]) >= 2:
                bucket = part[0]
                bucket.s_lowers.reverse()
                bucket.s_uppers.reverse()
                bucket.s_ids.reverse()
                if bucket.s_lowers[0] <= bucket.s_lowers[-1]:
                    continue  # palindromic keys: try another partition
                report = store.verify()
                assert not report.ok
                assert any(i.code == "partition-sort-order"
                           for i in report.issues)
                return
    pytest.skip("no partition with two distinct lower bounds")


def test_verify_detects_broken_side_list():
    store = HintStore(now=100)
    store.insert_until_now(10, 1)
    store.insert_until_now(50, 2)
    store._now = 20  # clock behind a stored now-row: contract broken
    report = store.verify()
    assert not report.ok
    assert any(i.code == "temporal-rows" for i in report.issues)


def test_verify_detects_flag_swap(rng):
    """Moving an entry between buckets breaks the dedup bookkeeping."""
    store = _loaded_store(rng)
    part = _nonempty_partition(store)
    originals, replicas = part
    lower = originals.s_lowers[0]
    upper = originals.s_uppers[0]
    interval_id = originals.s_ids[0]
    originals.remove(lower, upper, interval_id)
    replicas.add(lower, upper, interval_id)
    report = store.verify()
    assert not report.ok
    assert any(i.code == "partition-assignment" for i in report.issues)


# ----------------------------------------------------------------------
# cost model: the memory-vs-disk planning axis
# ----------------------------------------------------------------------
def test_cost_model_zeroes_physical_reads(rng):
    store = HintStore()
    store.bulk_load(make_intervals(rng, 500, domain=40_000, mean_length=400))
    model = store.cost_model()
    assert isinstance(model, HintCostModel)
    assert model.store is store
    probes = make_intervals(rng, 40, domain=40_000, mean_length=800)
    for predicate in (None, "intersects", "during", "before"):
        estimate = model.estimate_join(probes, predicate=predicate)
        assert estimate.index.physical_reads == 0.0
        assert estimate.sweep.physical_reads == 0.0
        assert estimate.index.frame_cost > 0.0
        assert estimate.choice in ("index-nested-loop", "sweep")
    # The cached model is reused until a mutation bumps the version.
    assert store.cost_model() is model
    store.insert(1, 2, 999_777)
    assert store.cost_model() is not model


def test_cost_model_prices_memory_below_disk(rng):
    """Same workload, same formulas: the HINT plan must carry strictly
    less physical I/O than the disk tree's plan -- the signal AutoJoin
    uses to prefer memory."""
    records = make_intervals(rng, 600, domain=50_000, mean_length=400)
    probes = make_intervals(rng, 60, domain=50_000, mean_length=700)
    hint = HintStore()
    hint.bulk_load(records)
    tree = RITree()
    tree.bulk_load(records)
    hint_est = hint.cost_model().estimate_join(probes)
    tree_est = tree.cost_model().estimate_join(probes)
    assert hint_est.index.physical_reads < tree_est.index.physical_reads
    assert hint_est.index.physical_reads == 0.0


def test_auto_join_dispatches_on_the_hint_store(rng):
    records = make_intervals(rng, 400, domain=30_000, mean_length=300)
    probes = make_intervals(rng, 50, domain=30_000, mean_length=500)
    store = HintStore()
    store.bulk_load(records)
    auto = AutoJoin(method=store)
    pairs = sorted(auto.pairs(probes, []))
    expected = sorted(
        (pid, i) for pl, pu, pid in probes
        for s, e, i in records if pl <= e and s <= pu)
    assert pairs == expected
    assert auto.last_dispatch in ("index-nested-loop", "sweep")
    assert auto.last_decision.index.physical_reads == 0.0
    assert auto.last_decision.choice == auto.last_dispatch
