"""Unit and property tests for the virtual backbone (paper Section 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FixedHeightBackbone, VirtualBackbone

bound = st.integers(-(2 ** 30), 2 ** 30)


def interval_strategy():
    return st.tuples(bound, st.integers(0, 2 ** 20)).map(
        lambda t: (t[0], t[0] + t[1]))


def test_first_insert_fixes_offset_and_forks_at_zero():
    backbone = VirtualBackbone()
    node = backbone.register(1000, 2000)
    assert backbone.offset == 1000
    assert node == 0  # shifted first interval always embraces the origin


def test_offset_never_changes_after_first_insert():
    backbone = VirtualBackbone()
    backbone.register(1000, 2000)
    backbone.register(-50_000, -40_000)
    backbone.register(900_000, 900_100)
    assert backbone.offset == 1000


def test_roots_grow_by_doubling():
    backbone = VirtualBackbone()
    backbone.register(0, 0)
    backbone.register(5, 7)          # shifted (5, 7): right root 4
    assert backbone.right_root == 4
    backbone.register(100, 200)      # shifted (100, 200): right root 128
    assert backbone.right_root == 128
    backbone.register(-3, -2)        # left root -2
    assert backbone.left_root == -2
    backbone.register(-1000, -900)
    assert backbone.left_root == -512


def test_fork_node_figure3_example():
    """Check the bisection against hand-computed forks in a height-4 tree."""
    backbone = VirtualBackbone()
    backbone.register(0, 0)          # offset 0
    backbone.register(1, 15)         # right root 8
    assert backbone.right_root == 8
    assert backbone.fork_node(1, 15) == 8
    assert backbone.fork_node(1, 3) == 2
    assert backbone.fork_node(5, 7) == 6
    assert backbone.fork_node(9, 11) == 10
    assert backbone.fork_node(13, 13) == 13
    assert backbone.fork_node(3, 9) == 8
    assert backbone.fork_node(1, 7) == 4


def test_fork_is_topmost_node_between_bounds():
    """The defining property: l <= fork <= u, and no shallower node is."""
    backbone = VirtualBackbone()
    backbone.register(0, 1023)
    for lower, upper in [(1, 1), (17, 93), (512, 600), (1000, 1023),
                         (3, 1020), (511, 513)]:
        backbone.register(lower, upper)
        fork = backbone.fork_node(lower, upper)
        shifted_l = backbone.shift(lower)
        shifted_u = backbone.shift(upper)
        assert shifted_l <= fork <= shifted_u
        if fork != 0:
            # Every ancestor level holds no node inside [l, u]: nodes at
            # level j are the odd multiples of 2^j.
            level = VirtualBackbone.node_level(fork)
            for higher in range(level + 1, 22):
                step = 2 ** higher
                first = (shifted_l + step - 1) // step * step
                inside = [w for w in range(first, shifted_u + 1, step)
                          if (w // step) % 2 == 1]
                assert not inside, (lower, upper, fork, higher)


def test_minstep_lemma():
    """An interval (l, u) is never registered below level log2(u - l)."""
    backbone = VirtualBackbone()
    backbone.register(0, 2 ** 16)
    for lower, upper in [(100, 200), (1000, 1064), (7, 8), (0, 2 ** 15)]:
        backbone.register(lower, upper)
        fork = backbone.fork_node(lower, upper)
        if fork != 0:
            level = VirtualBackbone.node_level(fork)
            min_level = (upper - lower).bit_length() - 1
            assert level >= min_level


def test_minstep_tracks_minimum():
    backbone = VirtualBackbone()
    backbone.register(0, 2 ** 10)
    assert backbone.minstep is None  # fork at 0 does not update minstep
    backbone.register(256, 768)      # forks at 512, a high node
    first = backbone.minstep
    backbone.register(3, 3)          # a point: forks at a leaf
    assert backbone.minstep == 0
    backbone.register(256, 768)
    assert backbone.minstep == 0     # monotone: never grows back
    assert first is None or first >= 0


def test_height_independent_of_cardinality():
    backbone = VirtualBackbone()
    for i in range(1000):
        backbone.register(i % 64, i % 64 + 3)
    height_small_n = backbone.height()
    for i in range(5000):
        backbone.register(i % 64, i % 64 + 3)
    assert backbone.height() == height_small_n


def test_height_tracks_extent_and_granularity():
    coarse = VirtualBackbone()
    coarse.register(0, 0)
    coarse.register(1, 2 ** 16)        # extent 2^16, long intervals only
    coarse.register(2 ** 10, 2 ** 14)
    fine = VirtualBackbone()
    fine.register(0, 0)
    fine.register(1, 2 ** 16)
    fine.register(5, 5)                # a point: granularity 1
    assert fine.height() > coarse.height()


def test_walk_toward_visits_ancestors_only():
    backbone = VirtualBackbone()
    backbone.register(0, 0)      # fixes offset 0
    backbone.register(1, 1023)   # grows the right root to 512
    backbone.register(3, 3)      # forces minstep to 0 (full-depth walks)
    path = backbone.walk_toward(357)
    assert path[0] == 0
    assert path[-1] == 357
    # Walk levels strictly decrease.
    levels = [VirtualBackbone.node_level(node) for node in path[1:]]
    assert levels == sorted(levels, reverse=True)


def test_walk_prunes_at_minstep():
    backbone = VirtualBackbone()
    backbone.register(0, 0)
    backbone.register(1, 1023)
    backbone.register(512 - 64, 512 + 64)  # registers at 512
    pruned = backbone.walk_toward(357)
    backbone.use_minstep = False
    full = backbone.walk_toward(357)
    backbone.use_minstep = True
    assert len(pruned) < len(full)
    assert pruned == full[:len(pruned)]


def test_shift_requires_offset():
    backbone = VirtualBackbone()
    with pytest.raises(ValueError):
        backbone.shift(5)
    with pytest.raises(ValueError):
        backbone.fork_node(1, 2)


def test_domain_guard():
    backbone = VirtualBackbone()
    backbone.register(0, 10)
    with pytest.raises(ValueError):
        backbone.register(0, 2 ** 49)


def test_node_level():
    assert VirtualBackbone.node_level(1) == 0
    assert VirtualBackbone.node_level(6) == 1
    assert VirtualBackbone.node_level(8) == 3
    assert VirtualBackbone.node_level(-8) == 3
    with pytest.raises(ValueError):
        VirtualBackbone.node_level(0)


def test_fixed_height_backbone_static_space():
    backbone = FixedHeightBackbone(10)
    assert backbone.right_root == 512
    assert not backbone.is_empty
    node = backbone.register(5, 9)
    assert node == backbone.fork_node(5, 9)
    with pytest.raises(ValueError):
        backbone.register(0, 5)       # lower bound 0 outside [1, 2^10 - 1]
    with pytest.raises(ValueError):
        backbone.register(5, 1024)    # beyond the fixed space


def test_fixed_height_rejects_bad_height():
    with pytest.raises(ValueError):
        FixedHeightBackbone(0)


@settings(max_examples=200, deadline=None)
@given(interval_strategy())
def test_fork_bracketing_property(interval):
    lower, upper = interval
    backbone = VirtualBackbone()
    backbone.register(lower, upper)
    follow_up = backbone.register(lower, upper + 1) if upper < 2 ** 40 else 0
    fork = backbone.fork_node(lower, upper)
    assert backbone.shift(lower) <= fork <= backbone.shift(upper)
    assert follow_up <= backbone.shift(upper + 1)


@settings(max_examples=100, deadline=None)
@given(st.lists(interval_strategy(), min_size=1, max_size=50))
def test_register_then_fork_node_is_stable(intervals):
    """fork_node recomputation agrees with the original registration,
    even after the roots have grown (delete-path correctness)."""
    backbone = VirtualBackbone()
    registered = [(interval, backbone.register(*interval))
                  for interval in intervals]
    for (lower, upper), node in registered:
        assert backbone.fork_node(lower, upper) == node


@settings(max_examples=100, deadline=None)
@given(st.lists(interval_strategy(), min_size=1, max_size=40), bound)
def test_walk_covers_all_relevant_forks(intervals, probe):
    """Every registered fork with an interval reaching `probe` lies on the
    walk toward `probe` -- the completeness argument behind query descent."""
    backbone = VirtualBackbone()
    nodes = [backbone.register(lower, upper) for lower, upper in intervals]
    shifted_probe = backbone.shift(probe)
    path = set(backbone.walk_toward(shifted_probe))
    for (lower, upper), node in zip(intervals, nodes):
        if lower <= probe <= upper:
            assert node in path, (probe, (lower, upper), node)
