"""Tests for Allen's 13 interval relations (paper Section 4.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RITree
from repro.core import topology

proper_interval = st.tuples(st.integers(0, 2000),
                            st.integers(1, 400)).map(
    lambda t: (t[0], t[0] + t[1]))


def test_relate_canonical_examples():
    # Stored [s, e] vs query [l, u] = [10, 20].
    cases = {
        (0, 5): "before",
        (0, 10): "meets",
        (5, 15): "overlaps",
        (5, 20): "finished_by",
        (5, 25): "contains",
        (10, 15): "starts",
        (10, 20): "equals",
        (10, 25): "started_by",
        (12, 18): "during",
        (15, 20): "finishes",
        (15, 25): "overlapped_by",
        (20, 30): "met_by",
        (25, 30): "after",
    }
    for (s, e), expected in cases.items():
        assert topology.relate(s, e, 10, 20) == expected


@settings(max_examples=300, deadline=None)
@given(proper_interval, proper_interval)
def test_relate_is_a_partition(stored, query):
    """Exactly one of the 13 relations holds for proper intervals."""
    s, e = stored
    l, u = query
    relation = topology.relate(s, e, l, u)
    assert relation in topology.ALLEN_RELATIONS


@settings(max_examples=100, deadline=None)
@given(proper_interval, proper_interval)
def test_relate_converse_symmetry(stored, query):
    """Swapping the roles maps each relation to its converse."""
    converse = {
        "before": "after", "after": "before",
        "meets": "met_by", "met_by": "meets",
        "overlaps": "overlapped_by", "overlapped_by": "overlaps",
        "starts": "started_by", "started_by": "starts",
        "finishes": "finished_by", "finished_by": "finishes",
        "during": "contains", "contains": "during",
        "equals": "equals",
    }
    s, e = stored
    l, u = query
    forward = topology.relate(s, e, l, u)
    backward = topology.relate(l, u, s, e)
    assert converse[forward] == backward


def test_intersection_is_not_before_or_after():
    for s, e, l, u in [(0, 5, 3, 8), (0, 10, 10, 20), (5, 6, 0, 100)]:
        relation = topology.relate(s, e, l, u)
        assert relation not in ("before", "after")


@pytest.fixture(scope="module")
def loaded_tree():
    import random
    rng = random.Random(31337)
    tree = RITree()
    data = {}
    for i in range(1200):
        lower = rng.randrange(0, 5000)
        upper = lower + rng.randrange(1, 300)
        tree.insert(lower, upper, i)
        data[i] = (lower, upper)
    return tree, data


@pytest.mark.parametrize("relation", topology.ALLEN_RELATIONS)
def test_each_relation_query_equals_brute_force(loaded_tree, relation):
    import random
    rng = random.Random(hash(relation) & 0xFFFF)
    tree, data = loaded_tree
    for _ in range(25):
        l = rng.randrange(0, 5200)
        u = l + rng.randrange(1, 400)
        got = sorted(topology.query_relation(tree, relation, l, u))
        expected = sorted(i for i, (s, e) in data.items()
                          if topology.relate(s, e, l, u) == relation)
        assert got == expected, (relation, l, u)


def test_relations_partition_the_database(loaded_tree):
    tree, data = loaded_tree
    l, u = 2000, 2500
    union: list[int] = []
    for relation in topology.ALLEN_RELATIONS:
        union.extend(topology.query_relation(tree, relation, l, u))
    assert sorted(union) == sorted(data)  # every interval in exactly one


def test_exact_bound_relations_use_path_scans(loaded_tree):
    """meets/starts/etc. answer with O(h) probes -- far fewer logical reads
    than an intersection query returning the same region."""
    tree, data = loaded_tree
    tree.db.clear_cache()
    with tree.db.measure() as eq:
        topology.equals(tree, 2000, 2300)
    with tree.db.measure() as inter:
        tree.intersection(0, 5300)
    assert eq.logical_reads < inter.logical_reads


def test_unknown_relation_rejected(loaded_tree):
    tree, _ = loaded_tree
    with pytest.raises(ValueError):
        topology.query_relation(tree, "sideways", 1, 2)


def test_relations_on_empty_tree():
    tree = RITree()
    for relation in topology.ALLEN_RELATIONS:
        assert topology.query_relation(tree, relation, 5, 10) == []
