"""Unit tests for the engine-backed RI-tree."""

import pytest

from repro.core import RITree
from repro.engine import Database
from repro.methods import BruteForceIntervals

from ..conftest import make_intervals


def test_schema_matches_figure2():
    tree = RITree()
    assert tree.table.columns == ("node", "lower", "upper", "id")
    assert set(tree.table.indexes) == {"lowerIndex", "upperIndex"}
    assert tree.table.indexes["lowerIndex"].columns == ("node", "lower", "id")
    assert tree.table.indexes["upperIndex"].columns == ("node", "upper", "id")


def test_quickstart_docstring_example():
    tree = RITree()
    tree.insert(3, 9, interval_id=1)
    tree.insert(5, 15, interval_id=2)
    assert sorted(tree.intersection(8, 12)) == [1, 2]


def test_empty_tree_queries():
    tree = RITree()
    assert tree.intersection(0, 100) == []
    assert tree.stab(5) == []
    assert tree.interval_count == 0


def test_point_data_and_point_queries():
    tree = RITree()
    for i in range(50):
        tree.insert(i * 2, i * 2, i)
    assert tree.stab(10) == [5]
    assert tree.stab(11) == []
    assert sorted(tree.intersection(9, 15)) == [5, 6, 7]


def test_intersection_equals_brute_force(rng):
    records = make_intervals(rng, 1500)
    tree = RITree()
    brute = BruteForceIntervals()
    for record in records:
        tree.insert(*record)
        brute.insert(*record)
    for _ in range(150):
        lower = rng.randrange(0, 110_000)
        upper = lower + rng.randrange(0, 4000)
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))


def test_bulk_load_equals_dynamic_inserts(rng):
    records = make_intervals(rng, 1200)
    bulk = RITree()
    bulk.bulk_load(records)
    dynamic = RITree()
    for record in records:
        dynamic.insert(*record)
    for _ in range(80):
        lower = rng.randrange(0, 110_000)
        upper = lower + rng.randrange(0, 4000)
        assert sorted(bulk.intersection(lower, upper)) == \
            sorted(dynamic.intersection(lower, upper))
    assert bulk.index_entry_count == dynamic.index_entry_count == 2 * 1200


def test_delete_and_requery(rng):
    records = make_intervals(rng, 800)
    tree = RITree()
    tree.bulk_load(records)
    brute = BruteForceIntervals(records)
    for record in records[::2]:
        tree.delete(*record)
        brute.delete(*record)
    for _ in range(80):
        lower = rng.randrange(0, 110_000)
        upper = lower + rng.randrange(0, 4000)
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    assert tree.interval_count == 400


def test_delete_missing_raises():
    tree = RITree()
    with pytest.raises(KeyError):
        tree.delete(1, 2, 3)
    tree.insert(1, 2, 3)
    with pytest.raises(KeyError):
        tree.delete(1, 2, 4)
    with pytest.raises(KeyError):
        tree.delete(1, 3, 3)


def test_delete_after_root_growth():
    """fork_node recomputation must find rows registered under old roots."""
    tree = RITree()
    tree.insert(10, 20, 1)
    tree.insert(100, 110, 2)
    tree.insert(1_000_000, 1_000_010, 3)  # grows the right root massively
    tree.delete(100, 110, 2)
    assert sorted(tree.intersection(0, 2_000_000)) == [1, 3]


def test_negative_bounds_supported():
    tree = RITree()
    tree.insert(-100, -50, 1)
    tree.insert(-10, 10, 2)
    tree.insert(5, 50, 3)
    assert sorted(tree.intersection(-60, -5)) == [1, 2]
    assert sorted(tree.intersection(-1000, 1000)) == [1, 2, 3]
    assert tree.intersection(-1000, -500) == []


def test_duplicate_interval_bounds_different_ids():
    tree = RITree()
    tree.insert(5, 10, 1)
    tree.insert(5, 10, 2)
    assert sorted(tree.intersection(7, 7)) == [1, 2]
    tree.delete(5, 10, 1)
    assert tree.intersection(7, 7) == [2]


def test_results_are_duplicate_free(rng):
    records = make_intervals(rng, 600, mean_length=5000)
    tree = RITree()
    tree.bulk_load(records)
    for _ in range(60):
        lower = rng.randrange(0, 110_000)
        upper = lower + rng.randrange(0, 20_000)
        results = tree.intersection(lower, upper)
        assert len(results) == len(set(results))


def test_intersection_records_carries_bounds(rng):
    records = make_intervals(rng, 300)
    tree = RITree()
    tree.bulk_load(records)
    lookup = {record[2]: record[:2] for record in records}
    got = list(tree.intersection_records(0, 200_000))
    assert len(got) == 300
    for lower, upper, interval_id in got:
        assert lookup[interval_id] == (lower, upper)


def test_query_io_scales_with_results_not_cardinality(rng):
    """The heart of the paper: query cost is O(h log n + r/b), so doubling
    n with the same result size must not double query I/O."""
    def build(count):
        records = [(i * 40, i * 40 + 10, i) for i in range(count)]
        tree = RITree(Database())
        tree.bulk_load(records)
        tree.db.clear_cache()
        return tree

    def io_for(tree):
        with tree.db.measure() as delta:
            for k in range(20):
                tree.intersection(1000 + 400 * k, 1400 + 400 * k)
        return delta.physical_reads

    small_io = io_for(build(5_000))
    large_io = io_for(build(20_000))
    assert large_io < 2.5 * max(small_io, 1)


def test_shared_database_multiple_trees():
    db = Database()
    a = RITree(db, name="A")
    b = RITree(db, name="B")
    a.insert(1, 10, 1)
    b.insert(100, 200, 2)
    assert a.intersection(0, 1000) == [1]
    assert b.intersection(0, 1000) == [2]


def test_height_property_exposed():
    tree = RITree()
    tree.insert(0, 0, 0)
    tree.insert(1, 2 ** 16, 1)
    assert tree.height == tree.backbone.height()
    assert tree.height >= 1


def test_min_lower_max_upper_tracking():
    tree = RITree()
    assert tree.min_lower is None and tree.max_upper is None
    tree.insert(10, 20, 1)
    tree.insert(-5, 8, 2)
    assert tree.min_lower == -5
    assert tree.max_upper == 20
