"""Store-conformance suite: one contract, every backend.

Every :class:`~repro.core.access.IntervalStore` implementation must be
interchangeable behind the shared API: identical intersection results,
identical counts, identical batch answers, identical join pair sets --
whatever engine the intervals live on.  The suite is parameterized over
the simulated-engine RI-tree, the sqlite3-backed RI-tree, the
main-memory HINT store, and the domain-sharding router (HINT shards
behind replication/dedup), and checks each against the brute-force
oracle.  Construction goes through :func:`repro.core.stores.
create_store`, so adding a backend means registering it and adding one
name (plus options) here.
"""

from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    HintStore,
    IntervalStore,
    RITree,
    ShardedStore,
    TemporalRITree,
    create_store,
)
from repro.core.costmodel import JoinEstimate
from repro.core.predicates import (
    DURATION_UNBOUNDED,
    compile_query,
    range_duration,
)
from repro.core.temporal import UPPER_INF, UPPER_NOW
from repro.engine import Database, FaultInjector, SimulatedCrash
from repro.methods.memory import BruteForceIntervals
from repro.workloads import join_workload
from repro.workloads.genomic import chromosome_cuts, duration_band, genomic

from ..conftest import make_intervals

STORE_FACTORIES = {
    "ritree": partial(create_store, "ritree"),
    "sql-ritree": partial(create_store, "sql-ritree"),
    "hint": partial(create_store, "hint"),
    # The router must be a conforming store in its own right; cuts sit
    # inside the suite's data domain so records and queries cross them.
    "sharded-hint": partial(
        create_store, "sharded", backend="hint", cuts=[16_000, 40_000]
    ),
}

STORE_NAMES = sorted(STORE_FACTORIES)


@pytest.fixture(params=STORE_NAMES)
def store_factory(request):
    return STORE_FACTORIES[request.param]


@pytest.fixture
def store(store_factory):
    return store_factory()


def queries_for(rng, count=60, domain=66_000, span=3000):
    out = []
    for _ in range(count):
        lower = rng.randrange(0, domain)
        out.append((lower, lower + rng.randrange(0, span)))
    return out


def test_both_backends_implement_the_protocol(store):
    assert isinstance(store, IntervalStore)


def test_protocol_requires_core_methods():
    with pytest.raises(TypeError):
        IntervalStore()


def test_insert_and_intersection_match_oracle(store, rng):
    records = make_intervals(rng, 400, domain=60_000, mean_length=500)
    oracle = BruteForceIntervals(records)
    store.extend(records)
    assert store.interval_count == len(records)
    for lower, upper in queries_for(rng):
        assert sorted(store.intersection(lower, upper)) == sorted(
            oracle.intersection(lower, upper)
        )


def test_bulk_load_equals_inserts(store, store_factory, rng):
    records = make_intervals(rng, 300, domain=40_000, mean_length=400)
    loaded = store_factory()
    loaded.bulk_load(records)
    store.extend(records)
    for lower, upper in queries_for(rng, count=30, domain=44_000):
        assert sorted(loaded.intersection(lower, upper)) == sorted(
            store.intersection(lower, upper)
        )


# ----------------------------------------------------------------------
# append_batch: the streaming fast path
# ----------------------------------------------------------------------
def test_append_batch_equals_insert_loop(store, store_factory, rng):
    records = make_intervals(rng, 240, domain=50_000, mean_length=400)
    looped = store_factory()
    for start in range(0, len(records), 40):
        batch = records[start : start + 40]
        store.append_batch(batch)
        for row in batch:
            looped.insert(*row)
        report = store.verify()
        assert report.ok, [i.as_dict() for i in report.issues]
    assert store.interval_count == looped.interval_count
    assert sorted(store.stored_records()) == sorted(records)
    for lower, upper in queries_for(rng, count=30, domain=55_000):
        assert sorted(store.intersection(lower, upper)) == sorted(
            looped.intersection(lower, upper)
        )


def test_append_batch_empty_is_noop(store):
    store.append_batch([])
    assert store.interval_count == 0
    assert store.verify().ok


def test_append_batch_temporal_rows_and_closes(store):
    if not hasattr(store, "insert_until_now"):
        pytest.skip("backend has no temporal entry points")
    store.advance_to(100)
    store.append_batch([(5, 50, 1), (10, UPPER_NOW, 2), (20, UPPER_INF, 3)])
    report = store.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
    assert store.interval_count == 3
    # The now-relative row reads as [10, 100], the infinite row never ends.
    assert sorted(store.intersection(60, 200)) == [2, 3]
    store.advance_to(300)
    if not hasattr(store, "close_now_interval"):
        # sqlite backend: now-relative appends, no closure op yet.
        assert sorted(store.stab(240)) == [2, 3]
        return
    store.close_now_interval(10, 2, 250)
    report = store.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
    assert sorted(store.stab(240)) == [2, 3]
    assert sorted(store.intersection(260, 400)) == [3]


def test_append_batch_temporal_equals_explicit_inserts(store, store_factory):
    if not hasattr(store, "insert_until_now"):
        pytest.skip("backend has no temporal entry points")
    explicit = store_factory()
    for target in (store, explicit):
        target.advance_to(200)
    rows = [(i * 13 % 900, i * 13 % 900 + 40 + i, i) for i in range(40)]
    open_rows = [(i * 7 % 200, 100 + i) for i in range(6)]
    inf_rows = [(i * 11 % 900, 200 + i) for i in range(4)]
    store.append_batch(
        rows
        + [(lower, UPPER_NOW, interval_id) for lower, interval_id in open_rows]
        + [(lower, UPPER_INF, interval_id) for lower, interval_id in inf_rows]
    )
    explicit.bulk_load(rows)
    for lower, interval_id in open_rows:
        explicit.insert_until_now(lower, interval_id)
    for lower, interval_id in inf_rows:
        explicit.insert_infinite(lower, interval_id)
    assert store.verify().ok
    assert store.interval_count == explicit.interval_count
    for lower in range(0, 1200, 150):
        assert sorted(store.intersection(lower, lower + 120)) == sorted(
            explicit.intersection(lower, lower + 120)
        )
    assert sorted(store.stored_records()) == sorted(explicit.stored_records())


def test_delete_removes_and_raises(store):
    store.insert(1, 10, 1)
    store.insert(1, 10, 2)
    store.delete(1, 10, 1)
    assert store.intersection(5, 5) == [2]
    with pytest.raises(KeyError):
        store.delete(1, 10, 1)
    with pytest.raises(KeyError):
        store.delete(99, 100, 5)


def test_count_and_many_are_consistent(store, rng):
    records = make_intervals(rng, 350, domain=50_000, mean_length=600)
    store.bulk_load(records)
    queries = queries_for(rng, count=40, domain=55_000)
    batched = store.intersection_many(queries)
    assert len(batched) == len(queries)
    for (lower, upper), ids in zip(queries, batched):
        single = store.intersection(lower, upper)
        assert sorted(ids) == sorted(single)
        assert store.intersection_count(lower, upper) == len(single)


def test_stab_is_degenerate_intersection(store, rng):
    records = make_intervals(rng, 200, domain=20_000, mean_length=300)
    store.bulk_load(records)
    for _ in range(25):
        point = rng.randrange(0, 22_000)
        assert sorted(store.stab(point)) == sorted(
            store.intersection(point, point)
        )


def test_join_pairs_and_count_match_oracle(store, rng):
    workload = join_workload(
        outer_n=80, inner_n=500, outer_d=3000, inner_d=600, seed=9
    )
    outer, inner = workload.outer.records, workload.inner.records
    store.bulk_load(inner)
    expected = sorted(
        (r_id, s_id)
        for r_lower, r_upper, r_id in outer
        for s_lower, s_upper, s_id in inner
        if r_lower <= s_upper and s_lower <= r_upper
    )
    pairs = store.join_pairs(outer)
    assert sorted(pairs) == expected
    assert len(pairs) == len(set(pairs))
    assert store.join_count(outer) == len(expected)


def test_stored_records_roundtrip(store, rng):
    records = make_intervals(rng, 150, domain=10_000, mean_length=200)
    store.bulk_load(records)
    assert sorted(store.stored_records()) == sorted(records)


def test_accounting(store, rng):
    records = make_intervals(rng, 120, domain=8_000, mean_length=150)
    store.bulk_load(records)
    assert store.interval_count == 120
    if isinstance(store, (HintStore, ShardedStore)):
        # HINT replicates per level instead of double-indexing (and the
        # router replicates across cuts on top): the entry count depends
        # on the partition geometry, but redundancy must still be the
        # entries-per-interval ratio.
        assert store.index_entry_count >= 120
        assert store.redundancy == pytest.approx(
            store.index_entry_count / 120
        )
    else:
        assert store.index_entry_count == 240
        assert store.redundancy == pytest.approx(2.0)


def test_empty_store(store):
    assert store.intersection(0, 100) == []
    assert store.intersection_count(0, 100) == 0
    assert store.intersection_many([(0, 10), (5, 20)]) == [[], []]
    assert store.join_pairs([(0, 10, 1)]) == []
    assert store.join_count([(0, 10, 1)]) == 0
    assert store.interval_count == 0
    assert store.redundancy == 0.0


def test_cost_model_plans_on_every_backend(store, rng):
    records = make_intervals(rng, 600, domain=50_000, mean_length=400)
    store.bulk_load(records)
    model = store.cost_model()
    assert model is not None
    probes = make_intervals(rng, 50, domain=50_000, mean_length=800)
    estimate = model.estimate_join(probes)
    assert isinstance(estimate, JoinEstimate)
    assert estimate.choice in ("index-nested-loop", "sweep")
    assert estimate.inner_n == len(records)


record = st.tuples(
    st.integers(0, 2**20 - 1), st.integers(0, 5000), st.integers(0, 10_000)
).map(lambda t: (t[0], min(t[0] + t[1], 2**20 - 1), t[2]))
query = st.tuples(st.integers(0, 2**20 - 1), st.integers(0, 10_000)).map(
    lambda t: (t[0], t[0] + t[1])
)


def unique_ids(records):
    seen = set()
    out = []
    for lower, upper, interval_id in records:
        if interval_id not in seen:
            seen.add(interval_id)
            out.append((lower, upper, interval_id))
    return out


@pytest.mark.parametrize("store_name", STORE_NAMES)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(record, max_size=60), st.lists(query, max_size=5))
def test_property_store_matches_oracle(store_name, records, queries):
    records = unique_ids(records)
    store = STORE_FACTORIES[store_name]()
    store.bulk_load(records)
    oracle = BruteForceIntervals(records)
    batched = store.intersection_many(queries)
    for (lower, upper), ids in zip(queries, batched):
        expected = sorted(oracle.intersection(lower, upper))
        assert sorted(store.intersection(lower, upper)) == expected
        assert sorted(ids) == expected
        assert store.intersection_count(lower, upper) == len(expected)


# ----------------------------------------------------------------------
# verify() after every mutation
# ----------------------------------------------------------------------
def test_verify_after_every_mutation(store, rng):
    assert store.verify().ok
    records = make_intervals(rng, 60, domain=10_000, mean_length=200)
    store.bulk_load(records[:30])
    assert store.verify().ok
    store.extend(records[30:40])
    assert store.verify().ok
    for lower, upper, interval_id in records[40:]:
        store.insert(lower, upper, interval_id)
        report = store.verify()
        assert report.ok, [i.as_dict() for i in report.issues]
    for lower, upper, interval_id in records[:10]:
        store.delete(lower, upper, interval_id)
        report = store.verify()
        assert report.ok, [i.as_dict() for i in report.issues]


def test_verify_after_every_temporal_mutation():
    tree = TemporalRITree(now=100)
    tree.bulk_load([(1, 5, 1), (3, 9, 2)])
    assert tree.verify().ok
    tree.insert_infinite(40, 3)
    assert tree.verify().ok
    tree.insert_until_now(10, 4)
    assert tree.verify().ok
    tree.advance_to(500)
    assert tree.verify().ok
    tree.close_now_interval(10, 4, 450)
    assert tree.verify().ok
    tree.delete_infinite(40, 3)
    report = tree.verify()
    assert report.ok, [i.as_dict() for i in report.issues]


# ----------------------------------------------------------------------
# crash at every write point, then recover, verify and match the oracle
# ----------------------------------------------------------------------
CRASH_ROWS = [(i * 17 % 400, i * 17 % 400 + 25, i) for i in range(30)]
CRASH_EXTEND = [(500 + 10 * i, 540 + 10 * i, 100 + i) for i in range(4)]
CRASH_QUERIES = [(0, 60), (200, 260), (420, 455), (520, 540), (0, 1000)]
CRASH_PROBES = [(0, 50, 1), (100, 400, 2), (430, 600, 3)]


def _ritree_steps(tree):
    return [
        lambda: tree.bulk_load(CRASH_ROWS),
        lambda: tree.extend(CRASH_EXTEND),
        lambda: tree.insert(3, 900, 200),
        lambda: tree.delete(*CRASH_ROWS[0]),
    ]


def _temporal_steps(tree):
    return [
        lambda: tree.bulk_load(CRASH_ROWS),
        lambda: tree.insert_infinite(40, 300),
        lambda: tree.insert_until_now(10, 301),
        lambda: tree.advance_to(500),
        lambda: tree.delete(*CRASH_ROWS[1]),
        lambda: tree.close_now_interval(10, 301, 450),
    ]


CRASH_CASES = {
    "ritree": (lambda db: RITree(db), RITree, _ritree_steps),
    "temporal": (
        lambda db: TemporalRITree(db, now=100),
        TemporalRITree,
        _temporal_steps,
    ),
}


def _oracle_parity(recovered):
    oracle = BruteForceIntervals(recovered.stored_records())
    for lower, upper in CRASH_QUERIES:
        assert sorted(recovered.intersection(lower, upper)) == sorted(
            oracle.intersection(lower, upper)
        )
    expected_pairs = sorted(
        (probe_id, interval_id)
        for p_lower, p_upper, probe_id in CRASH_PROBES
        for lower, upper, interval_id in recovered.stored_records()
        if p_lower <= upper and lower <= p_upper
    )
    assert sorted(recovered.join_pairs(CRASH_PROBES)) == expected_pairs


@pytest.mark.parametrize("kind", sorted(CRASH_CASES))
def test_crash_at_every_write_point_recovers_consistent(kind):
    factory, store_cls, steps_for = CRASH_CASES[kind]

    # Passive run: count the crash points and snapshot the state after
    # every atomic step -- the only states recovery may land on.
    passive = FaultInjector()
    db = Database(wal=True, injector=passive)
    tree = factory(db)
    allowed_states = [sorted(tree.stored_records())]
    for step in steps_for(tree):
        step()
        allowed_states.append(sorted(tree.stored_records()))
    db.flush()
    points = passive.write_points
    assert points > 0

    for n in range(1, points + 1):
        injector = FaultInjector().crash_at_write_point(n)
        db = Database(wal=True, injector=injector)
        crashed = False
        try:
            tree = factory(db)
            for step in steps_for(tree):
                step()
            db.flush()
        except SimulatedCrash:
            crashed = True
        recovered_db = db.recover()
        if not recovered_db.has_table("Intervals"):
            # The crash hit the DDL batch: nothing durable yet.
            assert crashed, f"point {n}: no table but no crash either"
            continue
        recovered = store_cls.attach(recovered_db)
        report = recovered.verify()
        assert report.ok, (n, [i.as_dict() for i in report.issues])
        state = sorted(recovered.stored_records())
        assert state in allowed_states, f"point {n}: not a committed prefix"
        if not crashed:
            assert state == allowed_states[-1]
        _oracle_parity(recovered)


@pytest.mark.parametrize("store_name", STORE_NAMES)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(record, max_size=50), st.lists(record, max_size=25))
def test_property_join_matches_oracle(store_name, inner, outer):
    inner = unique_ids(inner)
    outer = unique_ids(outer)
    store = STORE_FACTORIES[store_name]()
    store.bulk_load(inner)
    expected = sorted(
        (r_id, s_id)
        for r_lower, r_upper, r_id in outer
        for s_lower, s_upper, s_id in inner
        if r_lower <= s_upper and s_lower <= r_upper
    )
    assert sorted(store.join_pairs(outer)) == expected
    assert store.join_count(outer) == len(expected)


# ----------------------------------------------------------------------
# parameterized query families: the range-duration leg
# ----------------------------------------------------------------------
DURATION_BANDS = [(0, 150), (100, 800), (400, None), (0, None)]


def _duration_oracle(records, lower, upper, dmin, dmax):
    top = DURATION_UNBOUNDED if dmax is None else dmax
    return sorted(
        interval_id
        for s, e, interval_id in records
        if s <= upper and e >= lower and dmin <= e - s <= top
    )


def test_range_duration_matches_oracle(store, rng):
    records = make_intervals(rng, 400, domain=60_000, mean_length=500)
    store.bulk_load(records)
    for dmin, dmax in DURATION_BANDS:
        pred = range_duration(dmin, dmax)
        for lower, upper in queries_for(rng, count=12):
            expected = _duration_oracle(records, lower, upper, dmin, dmax)
            assert sorted(store.query(lower, upper, predicate=pred)) == expected


def test_range_duration_by_name_with_params(store, rng):
    records = make_intervals(rng, 200, domain=30_000, mean_length=400)
    store.bulk_load(records)
    pred = compile_query("range_duration", {"dmin": 50, "dmax": 600})
    for lower, upper in queries_for(rng, count=10, domain=33_000):
        assert sorted(store.query(lower, upper, predicate=pred)) == (
            _duration_oracle(records, lower, upper, 50, 600)
        )


def test_range_duration_temporal_sentinel_rows(store):
    if not hasattr(store, "insert_until_now"):
        pytest.skip("backend has no temporal entry points")
    store.advance_to(1000)
    store.bulk_load([(10, 110, 1), (50, 900, 2)])
    store.insert_until_now(400, 3)  # effective [400, 1000], duration 600
    store.insert_infinite(700, 4)  # duration stays the UPPER_INF sentinel
    # Effective durations: 100, 850, 600, "infinite".
    assert sorted(store.query(0, 2000, predicate=range_duration(0, 200))) == [1]
    assert sorted(store.query(0, 2000, predicate=range_duration(500, 900))) == [
        2,
        3,
    ]
    # Only the unbounded band admits the still-open row.
    assert sorted(store.query(0, 2000, predicate=range_duration(500))) == [2, 3, 4]
    # The clock moves: the now-relative duration grows with it.
    store.advance_to(1600)
    assert sorted(store.query(0, 2000, predicate=range_duration(900, 2000))) == [3]


def test_range_duration_verify_after_mutation(store, rng):
    records = make_intervals(rng, 80, domain=10_000, mean_length=300)
    store.bulk_load(records)
    pred = range_duration(100, 900)
    before = sorted(store.query(0, 11_000, predicate=pred))
    assert before == _duration_oracle(records, 0, 11_000, 100, 900)
    store.insert(2_000, 2_500, 999)
    report = store.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
    after = sorted(store.query(0, 11_000, predicate=pred))
    assert after == sorted(before + [999])
    store.delete(2_000, 2_500, 999)
    report = store.verify()
    assert report.ok, [i.as_dict() for i in report.issues]
    assert sorted(store.query(0, 11_000, predicate=pred)) == before


@pytest.mark.parametrize("shard_count", [1, 2, 4])
def test_range_duration_sharded_matches_unsharded(shard_count):
    workload = genomic(500, seed=7)
    records = workload.records
    flat = create_store("hint")
    flat.bulk_load(records)
    sharded = create_store(
        "sharded", backend="hint", cuts=chromosome_cuts(shard_count)
    )
    sharded.bulk_load(records)
    dmin, dmax = duration_band(records, 0.2, 0.8)
    pred = range_duration(dmin, dmax)
    for lower, upper in [(0, 2**20 - 1), (100_000, 400_000), (900_000, 950_000)]:
        assert sorted(sharded.query(lower, upper, predicate=pred)) == sorted(
            flat.query(lower, upper, predicate=pred)
        )


@pytest.mark.parametrize("store_name", STORE_NAMES)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(record, max_size=50),
    st.lists(query, max_size=4),
    st.integers(0, 4000),
    st.integers(0, 4000),
)
def test_property_range_duration_matches_oracle(
    store_name, records, queries, dmin, extent
):
    records = unique_ids(records)
    store = STORE_FACTORIES[store_name]()
    store.bulk_load(records)
    pred = range_duration(dmin, dmin + extent)
    for lower, upper in queries:
        expected = _duration_oracle(records, lower, upper, dmin, dmin + extent)
        assert sorted(store.query(lower, upper, predicate=pred)) == expected
