"""Domain-sharding router: cut handling, dedup invariants, and the
sharded-vs-unsharded parity suite.

The load-bearing invariant is the first-occurrence convention: a record
replicated across a cut must be reported exactly once and counted
exactly once by every query form, whatever the window's position
relative to the cuts -- including the adversarial geometries (point
intervals on a cut, windows starting exactly at a slice boundary,
sentinel uppers that cross every cut by definition).
"""

import pytest

from repro.core import ShardedStore, create_store
from repro.core.costmodel import BoundSummary
from repro.core.predicates import JOIN_PREDICATES, range_duration
from repro.core.router import derive_cuts
from repro.core.temporal import UPPER_INF, UPPER_NOW

from ..conftest import make_intervals


def twin_stores(records, cuts, backend="hint", now=0):
    """The same records in a router and in a single-store oracle."""
    opts = {"now": now} if now else {}
    single = create_store(backend, **opts)
    sharded = create_store("sharded", backend=backend, cuts=cuts, now=now)
    single.bulk_load(records)
    sharded.bulk_load(records)
    return single, sharded


# ----------------------------------------------------------------------
# derive_cuts
# ----------------------------------------------------------------------
def test_derive_cuts_balances_lower_bounds(rng):
    records = make_intervals(rng, 2_000, domain=50_000)
    summary = BoundSummary.from_records(records, buckets=64)
    cuts = derive_cuts(summary, 4)
    assert len(cuts) == 3
    assert cuts == sorted(cuts)
    shares = []
    edges = [None, *cuts, None]
    for lo, hi in zip(edges, edges[1:]):
        shares.append(sum(
            1 for lower, _, _ in records
            if (lo is None or lower > lo) and (hi is None or lower <= hi)))
    assert min(shares) > len(records) / 16, shares


def test_derive_cuts_edge_cases(rng):
    records = make_intervals(rng, 200, domain=10_000)
    summary = BoundSummary.from_records(records, buckets=16)
    assert derive_cuts(summary, 1) == []
    with pytest.raises(ValueError, match="shard_count"):
        derive_cuts(summary, 0)
    empty = BoundSummary.from_records([], buckets=16)
    with pytest.raises(ValueError, match="empty summary"):
        derive_cuts(empty, 2)
    # Fully skewed data collapses to fewer (here: zero) usable cuts.
    flat = BoundSummary.from_records([(5, 9, i) for i in range(50)],
                                     buckets=8)
    assert derive_cuts(flat, 4) == []


def test_router_construction_guards():
    with pytest.raises(ValueError, match="strictly increasing"):
        create_store("sharded", backend="hint", cuts=[10, 10])
    with pytest.raises(ValueError, match="needs records"):
        ShardedStore.create(backend="hint", shard_count=3)


# ----------------------------------------------------------------------
# the cut-straddling regression: nothing double-counts, ever
# ----------------------------------------------------------------------
CUT = 1_000


def straddling_records(now):
    """Every replication geometry around a cut at ``CUT``."""
    return [
        (CUT - 50, CUT + 50, 1),      # plain cut-crosser
        (CUT, CUT, 2),                # point interval ON the cut
        (CUT, CUT + 1, 3),            # starts on the cut, crosses it
        (CUT - 1, CUT, 4),            # ends exactly on the cut
        (CUT + 1, CUT + 80, 5),       # first value of the right slice
        (100, 200, 6),                # left-only
        (CUT + 500, CUT + 600, 7),    # right-only
        (CUT - 10, UPPER_INF, 8),     # sentinel: crosses by definition
        (CUT + 10, UPPER_INF, 9),
        (now - 5, UPPER_NOW, 10),     # now-row, clock left of the cut
    ]


@pytest.fixture
def straddle():
    now = 500
    records = straddling_records(now)
    single, sharded = twin_stores(records, [CUT], now=now)
    return single, sharded, records


WINDOWS = [
    (0, 5_000),            # spans the cut
    (CUT, CUT),            # point query on the cut
    (CUT - 50, CUT),       # ends on the cut
    (CUT, CUT + 50),       # starts on the cut
    (CUT + 1, CUT + 80),   # exactly the right slice's first stretch
    (0, CUT - 1), (CUT + 100, 4_000),
]


def test_intersection_never_reports_a_replica_twice(straddle):
    single, sharded, _ = straddle
    for window in WINDOWS:
        got = sharded.intersection(*window)
        assert sorted(got) == sorted(single.intersection(*window)), window
        assert len(got) == len(set(got)), window


def test_intersection_count_subtracts_replicas_exactly(straddle):
    single, sharded, _ = straddle
    for window in WINDOWS:
        assert sharded.intersection_count(*window) == (
            single.intersection_count(*window)), window


def test_now_replicas_count_once_after_the_clock_crosses_the_cut(straddle):
    single, sharded, _ = straddle
    for store in (single, sharded):
        store.advance_to(CUT + 40)  # [495, now] now crosses the cut
    for window in WINDOWS:
        assert sharded.intersection_count(*window) == (
            single.intersection_count(*window)), window
        assert sorted(sharded.intersection(*window)) == sorted(
            single.intersection(*window)), window


def test_join_paths_do_not_double_count(straddle):
    single, sharded, _ = straddle
    probes = [(lo, hi, 100 + i) for i, (lo, hi) in enumerate(WINDOWS)]
    assert sorted(sharded.join_pairs(probes)) == sorted(
        single.join_pairs(probes))
    assert sharded.join_count(probes) == single.join_count(probes)


def test_deleting_a_crosser_cleans_every_replica(straddle):
    single, sharded, records = straddle
    for lower, upper, interval_id in records:
        single.delete(lower, upper, interval_id)
        sharded.delete(lower, upper, interval_id)
    assert sharded.interval_count == 0
    assert sharded.replica_count == 0
    assert sharded.index_entry_count == 0
    assert sharded.intersection(0, 5_000) == []


def test_stored_records_deduplicate_replicas(straddle):
    single, sharded, records = straddle
    assert sorted(sharded.stored_records()) == sorted(
        single.stored_records())
    assert sharded.interval_count == len(records)
    assert sharded.replica_count > 0


def test_verify_flags_router_level_corruption(straddle):
    _, sharded, _ = straddle
    assert sharded.verify().ok
    # A record smuggled into one shard behind the router's back breaks
    # the physical = logical + replicas accounting.
    sharded.shards[1].insert(CUT + 5, CUT + 6, 999)
    report = sharded.verify()
    assert not report.ok
    assert any("shard-accounting" in issue.code for issue in report.issues)


# ----------------------------------------------------------------------
# sharded-vs-unsharded parity: every backend, every predicate
# ----------------------------------------------------------------------
DOMAIN = 20_000
PARITY_CUTS = {1: [], 2: [9_000], 4: [5_000, 9_000, 14_000]}


@pytest.mark.parametrize("backend", ["ritree", "sql-ritree", "hint"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_full_predicate_family_parity(rng, backend, shards):
    records = make_intervals(rng, 300, domain=DOMAIN, mean_length=800)
    single, sharded = twin_stores(records, PARITY_CUTS[shards],
                                  backend=backend)
    assert sharded.shard_count == shards
    windows = [(q * 1_700, q * 1_700 + 2_500) for q in range(8)]
    for window in windows:
        assert sorted(sharded.intersection(*window)) == sorted(
            single.intersection(*window))
        assert sharded.intersection_count(*window) == (
            single.intersection_count(*window))
        assert sorted(sharded.stab(window[0])) == sorted(
            single.stab(window[0]))
    for predicate in JOIN_PREDICATES:
        for window in windows[:4]:
            assert sorted(
                sharded.query(*window, predicate=predicate)) == sorted(
                single.query(*window, predicate=predicate)), predicate
    probes = [(lo, hi, i) for i, (lo, hi) in enumerate(windows)]
    assert sorted(sharded.join_pairs(probes)) == sorted(
        single.join_pairs(probes))
    assert sharded.join_count(probes) == single.join_count(probes)
    for predicate in ("during", "overlaps", "before"):
        assert sorted(
            sharded.join_pairs(probes, predicate=predicate)) == sorted(
            single.join_pairs(probes, predicate=predicate))
    assert sorted(sharded.stored_records()) == sorted(
        single.stored_records())
    assert sharded.verify().ok


@pytest.mark.parametrize("shards", [2, 4])
def test_temporal_parity_across_clock_advances(rng, shards):
    records = make_intervals(rng, 150, domain=DOMAIN, mean_length=600)
    now = 2_000
    sentinels = [(rng.randrange(0, DOMAIN), UPPER_INF, 10_000 + i)
                 for i in range(20)]
    sentinels += [(rng.randrange(0, now), UPPER_NOW, 20_000 + i)
                  for i in range(20)]
    single, sharded = twin_stores(records + sentinels, PARITY_CUTS[shards],
                                  now=now)
    for clock in (now, 6_000, 15_000, 30_000):
        if clock != now:
            single.advance_to(clock)
            sharded.advance_to(clock)
        for q in range(6):
            window = (q * 3_000, q * 3_000 + 4_000)
            assert sorted(sharded.intersection(*window)) == sorted(
                single.intersection(*window)), (clock, window)
            assert sharded.intersection_count(*window) == (
                single.intersection_count(*window)), (clock, window)


def test_routing_stats_shape(straddle):
    _, sharded, records = straddle
    sharded.intersection(0, 5_000)
    stats = sharded.routing_stats()
    assert stats["shard_count"] == 2
    assert stats["cuts"] == [CUT]
    assert stats["records"] == len(records)
    assert stats["replicas"] == sharded.replica_count
    assert len(stats["shards"]) == 2
    assert stats["shards"][0]["slice"] == [None, CUT]
    assert stats["shards"][1]["slice"] == [CUT + 1, None]
    assert all(s["queries"] >= 1 for s in stats["shards"])


def test_cost_model_covers_the_logical_population(straddle):
    _, sharded, records = straddle
    model = sharded.cost_model()
    estimate = model.estimate(0, 5_000)
    assert estimate.result_count >= 0


def test_routing_stats_count_family_queries(straddle):
    _, sharded, _ = straddle
    before = [
        s["predicate_queries"] for s in sharded.routing_stats()["shards"]
    ]
    # Relation and family queries fan out to every shard (relations such
    # as before/after reach outside the window), so each query bumps
    # every shard's counter exactly once.
    sharded.query(0, 500, predicate=range_duration(0, 10_000))
    sharded.query(0, 5_000, predicate="during")
    after = [
        s["predicate_queries"] for s in sharded.routing_stats()["shards"]
    ]
    assert after == [n + 2 for n in before]
    # Plain intersections stay in the dedicated queries counter.
    sharded.intersection(0, 5_000)
    stats = sharded.routing_stats()
    assert [
        s["predicate_queries"] for s in stats["shards"]
    ] == after
    assert all(
        s["queries"] > s["predicate_queries"] for s in stats["shards"]
    )
