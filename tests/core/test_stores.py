"""The store factory/registry and the keyword-only signature shims."""

import pytest

from repro.core import (
    HintStore,
    IntervalStore,
    RITree,
    ShardedStore,
    TemporalRITree,
    available_backends,
    create_store,
)
from repro.core.stores import backend_description, register_backend
from repro.bench.harness import run_join_batch
from repro.engine import Database


def test_registry_lists_every_builtin_backend():
    names = available_backends()
    for expected in ("hint", "ritree", "sharded", "sql-ritree",
                     "temporal-ritree"):
        assert expected in names


@pytest.mark.parametrize("name, cls", [
    ("ritree", RITree),
    ("temporal-ritree", TemporalRITree),
    ("hint", HintStore),
])
def test_create_store_builds_the_registered_class(name, cls):
    store = create_store(name)
    assert isinstance(store, cls)
    assert isinstance(store, IntervalStore)


def test_create_store_normalises_names():
    assert type(create_store("SQL_RITREE")) is type(create_store("sql-ritree"))
    assert isinstance(create_store("  Hint "), HintStore)


def test_create_store_forwards_options():
    store = create_store("hint", now=25)
    assert store.now == 25
    sharded = create_store("sharded", backend="hint", cuts=[100])
    assert isinstance(sharded, ShardedStore)
    assert sharded.shard_count == 2
    assert all(isinstance(s, HintStore) for s in sharded.shards)


def test_unknown_backend_is_a_value_error():
    with pytest.raises(ValueError, match="unknown backend"):
        create_store("btree")
    with pytest.raises(ValueError, match="non-empty string"):
        create_store("   ")


def test_register_backend_guards_and_replace():
    marker = object()
    register_backend("stores-test-dummy", lambda: marker,
                     description="a test dummy")
    try:
        assert create_store("stores_test_dummy") is marker
        assert backend_description("stores-test-dummy") == "a test dummy"
        with pytest.raises(ValueError, match="already registered"):
            register_backend("stores-test-dummy", lambda: None)
        other = object()
        register_backend("stores-test-dummy", lambda: other, replace=True)
        assert create_store("stores-test-dummy") is other
    finally:
        from repro.core.stores import _REGISTRY

        _REGISTRY.pop("stores-test-dummy", None)


def test_sql_backends_get_fresh_connections_per_store():
    first = create_store("sql-ritree")
    second = create_store("sql-ritree")
    first.insert(1, 5, interval_id=1)
    assert second.intersection(0, 10) == []


# ----------------------------------------------------------------------
# the harness consumes backends by name
# ----------------------------------------------------------------------
def make_records():
    return [(i * 10, i * 10 + 25, i) for i in range(1, 40)]


def test_run_join_batch_accepts_a_backend_name():
    probes = [(5, 60, 1), (200, 260, 2)]
    by_name = run_join_batch("hint", make_records(), probes)
    by_store = run_join_batch(create_store("hint"), make_records(), probes)
    assert by_name.pairs == by_store.pairs


def test_run_join_batch_forwards_store_opts():
    probes = [(5, 60, 1)]
    result = run_join_batch("sharded", make_records(), probes,
                            store_opts={"backend": "hint", "cuts": [180]})
    assert result.pairs == run_join_batch("hint", make_records(),
                                          probes).pairs


# ----------------------------------------------------------------------
# keyword-only signatures with one-cycle positional shims
# ----------------------------------------------------------------------
def loaded(name="hint", **opts):
    store = create_store(name, **opts)
    store.bulk_load(make_records())
    return store


def test_query_predicate_is_keyword_only_with_shim():
    store = loaded()
    expected = store.query(100, 200, predicate="during")
    # The pre-v8 predicate-first form warns once and still answers.
    with pytest.warns(DeprecationWarning, match="deprecated"):
        assert store.query("during", 100, 200) == expected
    # A trailing positional predicate was never valid and stays a
    # TypeError pointing at the keyword spelling.
    with pytest.raises(TypeError, match="predicate as predicate="):
        store.query(100, 200, "during")


def test_join_predicate_is_keyword_only_with_shim():
    store = loaded()
    probes = [(100, 200, 7)]
    expected = store.join_pairs(probes, predicate="overlaps")
    with pytest.warns(DeprecationWarning, match="positionally"):
        assert store.join_pairs(probes, "overlaps") == expected
    with pytest.warns(DeprecationWarning, match="positionally"):
        assert store.join_count(probes, "overlaps") == len(expected)


def test_shim_rejects_doubled_predicates():
    store = loaded()
    with pytest.raises(TypeError, match="both positionally"):
        store.query("during", 1, 2, predicate="during")
    with pytest.raises(TypeError, match="both positionally"):
        store.join_pairs([(1, 2, 3)], "during", predicate="overlaps")
    with pytest.raises(TypeError, match="extra positional"):
        store.join_count([(1, 2, 3)], "during", "overlaps")


def test_advance_to_timestamp_alias_still_works():
    store = create_store("temporal-ritree", db=Database())
    with pytest.warns(DeprecationWarning, match="timestamp"):
        store.advance_to(timestamp=40)
    assert store.now == 40
    store.advance_to(now=50)
    assert store.now == 50
    with pytest.raises(TypeError, match="both"):
        store.advance_to(60, timestamp=70)
