"""Property-based tests: the RI-tree against two independent oracles."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RITree
from repro.methods import BruteForceIntervals, IntervalTree

interval = st.tuples(st.integers(-5000, 5000), st.integers(0, 3000)).map(
    lambda t: (t[0], t[0] + t[1]))
record = st.tuples(st.integers(-5000, 5000), st.integers(0, 3000),
                   st.integers(0, 2 ** 60)).map(
    lambda t: (t[0], t[0] + t[1], t[2]))


def unique_ids(records):
    seen = set()
    out = []
    for lower, upper, interval_id in records:
        if interval_id not in seen:
            seen.add(interval_id)
            out.append((lower, upper, interval_id))
    return out


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, max_size=120), st.lists(interval, max_size=10))
def test_intersection_equals_brute_force(records, queries):
    records = unique_ids(records)
    tree = RITree()
    brute = BruteForceIntervals()
    for rec in records:
        tree.insert(*rec)
        brute.insert(*rec)
    for lower, upper in queries:
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, min_size=1, max_size=100), st.lists(interval,
                                                            max_size=8))
def test_intersection_equals_edelsbrunner_tree(records, queries):
    """Cross-check against the materialised interval tree, whose code path
    shares nothing with the RI-tree's."""
    records = unique_ids(records)
    tree = RITree()
    tree.bulk_load(records)
    points = [b for rec in records for b in (rec[0], rec[1])]
    oracle = IntervalTree(points)
    for rec in records:
        oracle.insert(*rec)
    for lower, upper in queries:
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(oracle.intersection(lower, upper))


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, min_size=1, max_size=80), st.data())
def test_delete_reinsert_roundtrip(records, data):
    records = unique_ids(records)
    tree = RITree()
    for rec in records:
        tree.insert(*rec)
    victims = data.draw(st.sets(st.sampled_from(range(len(records))),
                                max_size=len(records)))
    alive = [rec for i, rec in enumerate(records) if i not in victims]
    for i in sorted(victims):
        tree.delete(*records[i])
    brute = BruteForceIntervals(alive)
    for lower, upper in [(-10_000, 10_000), (0, 0), (-500, 500)]:
        assert sorted(tree.intersection(lower, upper)) == \
            sorted(brute.intersection(lower, upper))
    # Reinsert everything deleted; the tree must fully recover.
    for i in sorted(victims):
        tree.insert(*records[i])
    full = BruteForceIntervals(records)
    assert sorted(tree.intersection(-10_000, 10_000)) == \
        sorted(full.intersection(-10_000, 10_000))


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, max_size=100), st.integers(-6000, 6000))
def test_stab_equals_intersection_of_point(records, point):
    records = unique_ids(records)
    tree = RITree()
    tree.bulk_load(records)
    assert sorted(tree.stab(point)) == sorted(tree.intersection(point, point))


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, max_size=100), st.lists(interval, max_size=6))
def test_results_never_contain_duplicates(records, queries):
    """The paper's Section 4.2 claim: UNION ALL without DISTINCT is safe."""
    records = unique_ids(records)
    tree = RITree()
    tree.bulk_load(records)
    for lower, upper in queries:
        results = tree.intersection(lower, upper)
        assert len(results) == len(set(results))


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(record, max_size=100))
def test_index_entry_count_is_exactly_2n(records):
    records = unique_ids(records)
    tree = RITree()
    tree.bulk_load(records)
    assert tree.index_entry_count == 2 * len(records)
    assert tree.interval_count == len(records)
