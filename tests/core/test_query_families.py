"""Parameterized query families: registry, compilation, range-duration.

The :class:`~repro.core.predicates.QueryFamily` layer generalizes the
fifteen classic relations into named, parameterized families resolved
through a single entry point (:func:`~repro.core.predicates.
compile_query`).  These tests pin the registry contract, the
range-duration semantics (including the sentinel conventions for
now-relative and infinite rows), the inverse construction the join
strategies rely on, and the cost-model estimator hook.
"""

import pytest

from repro.core.costmodel import RITreeCostModel
from repro.core.predicates import (
    DURATION_UNBOUNDED,
    FAMILIES,
    PREDICATES,
    CompiledQuery,
    QueryFamily,
    compile_query,
    get_family,
    range_duration,
    register_family,
    resolve_join_predicate,
)
from repro.core.ritree import RITree
from repro.core.temporal import UPPER_INF


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
def test_every_classic_relation_is_a_zero_parameter_family():
    for name in PREDICATES:
        family = get_family(name)
        assert family.parameters == ()
        assert compile_query(name) is PREDICATES[name]


def test_parameterized_families_are_registered():
    assert FAMILIES["range_duration"].parameters == ("dmin", "dmax")
    assert FAMILIES["range_duration_by"].parameters == ("dmin", "dmax")


def test_get_family_error_lists_registered_names():
    with pytest.raises(ValueError, match="range_duration"):
        get_family("no-such-family")


def test_compile_rejects_unknown_parameters():
    with pytest.raises(ValueError, match="dmid"):
        FAMILIES["range_duration"].compile(dmid=3)


def test_compile_query_rejects_object_plus_params():
    pred = range_duration(0, 10)
    with pytest.raises(ValueError, match="both"):
        compile_query(pred, {"dmin": 0})


def test_register_family_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_family(FAMILIES["range_duration"])


def test_register_and_resolve_a_new_family():
    name = "test-only-family"
    family = QueryFamily(
        name=name,
        parameters=("k",),
        factory=lambda k=0: range_duration(k),
        description="test fixture",
    )
    try:
        assert register_family(family) is family
        compiled = compile_query(name, {"k": 7})
        assert compiled.param_dict == {"dmin": 7, "dmax": DURATION_UNBOUNDED}
    finally:
        del FAMILIES[name]


# ----------------------------------------------------------------------
# range-duration semantics
# ----------------------------------------------------------------------
def test_range_duration_holds_is_intersection_plus_band():
    pred = range_duration(10, 50)
    assert pred.holds(0, 20, 15, 100)  # duration 20, intersects
    assert not pred.holds(0, 5, 15, 100)  # misses the window
    assert not pred.holds(0, 9, 0, 100)  # duration 9 < dmin
    assert not pred.holds(0, 60, 0, 100)  # duration 60 > dmax
    assert pred.holds(30, 80, 15, 100)  # duration 50 == dmax


def test_range_duration_empty_band_rejected():
    with pytest.raises(ValueError, match="empty duration band"):
        range_duration(10, 5)


def test_range_duration_default_band_is_unbounded():
    pred = range_duration()
    assert pred.param_dict == {"dmin": 0, "dmax": DURATION_UNBOUNDED}
    # The UPPER_INF sentinel duration only fits the unbounded band.
    assert pred.holds(5, UPPER_INF, 0, 100)
    assert not range_duration(0, 10**9).holds(5, UPPER_INF, 0, 100)


def test_range_duration_wire_identity_roundtrips():
    pred = range_duration(5, 500)
    rebuilt = compile_query(pred.family_name, pred.param_dict)
    assert isinstance(rebuilt, CompiledQuery)
    assert rebuilt.name == pred.name
    assert rebuilt.params == pred.params
    assert rebuilt.sql_binds == {"dmin": 5, "dmax": 500}


def test_range_duration_inverse_gates_on_probe_duration():
    pred = range_duration(10, 50)
    inverse = pred.inverse
    # A probe whose own duration misses the band is empty at candidate
    # time -- no store access needed.
    assert inverse.candidates(0, 5, None, None) is None
    assert inverse.candidates(0, 30, None, None) == (0, 30)
    # The inverse of the inverse is the direct query again.
    assert inverse.inverse.name == pred.name
    assert inverse.inverse.params == pred.params


def test_range_duration_candidates_cover_the_window():
    assert range_duration(0, 99).candidates(30, 70, None, None) == (30, 70)


def test_range_duration_query_on_a_tree():
    tree = RITree()
    tree.bulk_load([(0, 10, 1), (5, 105, 2), (50, 60, 3), (200, 900, 4)])
    assert sorted(tree.query(0, 100, predicate=range_duration(0, 20))) == [1, 3]
    assert sorted(tree.query(0, 100, predicate=range_duration(50))) == [2]
    assert tree.query(0, 100, predicate=range_duration(701)) == []


# ----------------------------------------------------------------------
# join-predicate resolution (error quality + family acceptance)
# ----------------------------------------------------------------------
def test_resolve_join_predicate_accepts_compiled_families():
    pred = range_duration(0, 10)
    assert resolve_join_predicate(pred) is pred
    assert resolve_join_predicate(None) is None
    assert resolve_join_predicate("intersects") is None


def test_resolve_join_predicate_error_lists_families():
    with pytest.raises(ValueError) as excinfo:
        resolve_join_predicate("range_dur")
    message = str(excinfo.value)
    assert "range_duration" in message
    assert "before" in message


# ----------------------------------------------------------------------
# the cost-model estimator hook
# ----------------------------------------------------------------------
def test_estimator_prices_duration_selectivity():
    records = [(i * 10, i * 10 + (5 if i % 2 else 500), i) for i in range(200)]
    tree = RITree()
    tree.bulk_load(records)
    model = RITreeCostModel(tree)
    narrow = model.estimate_query(range_duration(0, 10), 0, 2500)
    wide = model.estimate_query(range_duration(0, 1000), 0, 2500)
    plain = model.estimate_query("intersects", 0, 2500)
    # Half the records are short: the narrow band prices below the wide
    # one, and no band prices above the plain intersection.
    assert narrow.result_count < wide.result_count
    assert wide.result_count <= plain.result_count * 1.01
