"""Tests for the optimizer cost model (paper Section 5)."""

import pytest

from repro.core import RITree, RITreeCostModel
from repro.core.costmodel import (
    BoundSummary,
    choose_join_strategy,
    expected_join_pairs,
    heap_scan_blocks,
    index_geometry,
)
from repro.workloads import d1, range_queries
from repro.workloads.joins import expected_pair_count, join_workload


@pytest.fixture(scope="module")
def modelled_tree():
    workload = d1(10_000, 2000, seed=3)
    tree = RITree()
    tree.bulk_load(workload.records)
    model = RITreeCostModel(tree)
    return workload, tree, model


def test_validation():
    tree = RITree()
    with pytest.raises(ValueError):
        RITreeCostModel(tree, buckets=1)
    with pytest.raises(ValueError):
        RITreeCostModel(tree, cache_residency=1.5)


def test_empty_tree_estimates_zero():
    model = RITreeCostModel(RITree())
    assert model.estimate_result_count(0, 100) == 0.0
    estimate = model.estimate(0, 100)
    assert estimate.result_count == 0.0
    assert estimate.transient_entries == 0


def test_result_estimates_track_reality(modelled_tree):
    """Histogram estimates land within 30% + 20 of the true counts."""
    workload, tree, model = modelled_tree
    for selectivity in (0.005, 0.01, 0.03):
        for lower, upper in range_queries(workload, selectivity, 15, seed=7):
            true_count = len(tree.intersection(lower, upper))
            estimated = model.estimate_result_count(lower, upper)
            assert abs(estimated - true_count) <= 0.3 * true_count + 20, (
                selectivity, lower, upper, estimated, true_count)


def test_estimates_are_monotone_in_query_width(modelled_tree):
    _, __, model = modelled_tree
    narrow = model.estimate_result_count(500_000, 510_000)
    wide = model.estimate_result_count(480_000, 540_000)
    assert wide >= narrow


def test_io_prediction_within_factor_of_measured(modelled_tree):
    """Predicted physical I/O stays within 4x of the measured average."""
    workload, tree, model = modelled_tree
    queries = range_queries(workload, 0.01, 20, seed=9)
    tree.db.clear_cache()
    with tree.db.measure() as delta:
        for lower, upper in queries:
            tree.intersection(lower, upper)
    measured = delta.physical_reads / len(queries)
    predicted = sum(model.estimate(lower, upper).physical_reads
                    for lower, upper in queries) / len(queries)
    assert predicted <= 4 * max(measured, 1)
    assert measured <= 4 * max(predicted, 1)


def test_plan_choice_against_full_scan(modelled_tree):
    """Selective queries pick the index; the everything-query may not."""
    workload, tree, model = modelled_tree
    selective = model.estimate(100, 200)
    assert selective.cheaper_than_full_scan(model.table_blocks)
    everything = model.estimate(0, 2 ** 20 - 1)
    assert everything.result_count > 0.9 * workload.n


def test_refresh_after_updates():
    tree = RITree()
    for i in range(200):
        tree.insert(i * 10, i * 10 + 5, i)
    model = RITreeCostModel(tree, buckets=16)
    before = model.estimate_result_count(0, 2000)
    for i in range(200, 400):
        tree.insert(i * 10, i * 10 + 5, i)
    model.refresh()
    after_refresh = model.estimate_result_count(0, 4000)
    assert after_refresh > before


def test_transient_entries_exact(modelled_tree):
    workload, tree, model = modelled_tree
    estimate = model.estimate(1000, 50_000)
    assert estimate.transient_entries == \
        tree.query_nodes(1000, 50_000).total_entries
    assert estimate.index_probes == estimate.transient_entries


def test_selectivity_field(modelled_tree):
    workload, _, model = modelled_tree
    estimate = model.estimate(0, 2 ** 20 - 1)
    assert 0.9 <= estimate.selectivity <= 1.0


# ----------------------------------------------------------------------
# statistics sources and geometry helpers
# ----------------------------------------------------------------------
def test_refresh_from_indexes_matches_table_scan(modelled_tree):
    """ANALYZE via the composite indexes == ANALYZE via the base table."""
    _, tree, model = modelled_tree
    from_indexes = RITreeCostModel(tree, source="indexes")
    assert from_indexes.summary.count == model.summary.count
    assert from_indexes.summary.lower_bounds == model.summary.lower_bounds
    assert from_indexes.summary.upper_bounds == model.summary.upper_bounds


def test_invalid_statistics_source_rejected():
    with pytest.raises(ValueError, match="statistics source"):
        RITreeCostModel(RITree(), source="moon phase")


def test_heap_scan_blocks_matches_engine(modelled_tree):
    """The sweep's input-scan price mirrors the real heap layout."""
    from repro.bench.harness import paper_database

    db = paper_database()
    table = db.create_table("R", ["lower", "upper", "id"])
    workload = d1(3000, 1500, seed=5)
    table.bulk_load(workload.records)
    assert heap_scan_blocks(3000, 3, db.disk.block_size) == table.heap.page_count


def test_index_geometry_matches_engine(modelled_tree):
    _, tree, _ = modelled_tree
    index = tree.table.index("lowerIndex").tree
    height, leaf_capacity = index_geometry(
        tree.interval_count, 3, tree.db.disk.block_size)
    assert leaf_capacity == index.leaf_capacity
    assert height == index.height


def test_heap_scan_blocks_empty_relation():
    assert heap_scan_blocks(0, 3) == 0


# ----------------------------------------------------------------------
# join estimation (the planner path)
# ----------------------------------------------------------------------
def test_expected_join_pairs_tracks_oracle():
    workload = join_workload(300, 2000, seed=11)
    outer, inner = workload.outer.records, workload.inner.records
    estimate = expected_join_pairs(
        BoundSummary.from_records(outer), BoundSummary.from_records(inner))
    true_pairs = expected_pair_count(outer, inner)
    assert abs(estimate - true_pairs) <= 0.15 * true_pairs + 20


def test_join_estimate_fields_and_dict(modelled_tree):
    workload, tree, model = modelled_tree
    probes = join_workload(50, 10, seed=2).outer.records
    estimate = model.estimate_join(probes)
    assert estimate.outer_n == 50
    assert estimate.inner_n == tree.interval_count
    assert estimate.index.strategy == "index-nested-loop"
    assert estimate.sweep.strategy == "sweep"
    assert estimate.choice in ("index-nested-loop", "sweep")
    assert estimate.chosen.strategy == estimate.choice
    as_dict = estimate.as_dict()
    assert as_dict["choice"] == estimate.choice
    assert set(as_dict["index"]) == {
        "strategy", "logical_reads", "physical_reads", "frame_cost"}


def test_crossover_decision_index_favored():
    """A handful of probes against a big inner relation: probe the index.

    The sweep must scan all of the inner relation (hundreds of blocks);
    five selective probes touch a few dozen -- the planner must see it.
    """
    workload = join_workload(5, 8000, seed=3)
    estimate = choose_join_strategy(
        workload.outer.records, workload.inner.records)
    assert estimate.choice == "index-nested-loop"
    assert estimate.index.physical_reads < estimate.sweep.physical_reads


def test_crossover_decision_sweep_favored():
    """Probe count comparable to the inner relation: one merge pass wins.

    A thousand probes re-read index leaves over and over; two sequential
    input scans are bounded by the relations' sizes.
    """
    workload = join_workload(1000, 2000, seed=4)
    estimate = choose_join_strategy(
        workload.outer.records, workload.inner.records)
    assert estimate.choice == "sweep"
    assert estimate.sweep.physical_reads < estimate.index.physical_reads


def test_tree_model_and_engine_free_planner_agree(modelled_tree):
    """Both planner entry points pick the same strategy on one workload."""
    _, tree, model = modelled_tree
    inner = [(row[1], row[2], row[3]) for _rowid, row in tree.table.scan()]
    for outer_n, seed in ((10, 7), (800, 8)):
        probes = join_workload(outer_n, 10, seed=seed).outer.records
        via_tree = model.estimate_join(probes)
        via_records = choose_join_strategy(probes, inner)
        assert via_tree.choice == via_records.choice
    # The bound method defaults to the modelled tree as the inner side.
    probes = join_workload(20, 10, seed=9).outer.records
    assert model.choose_join_strategy(probes).choice == \
        model.estimate_join(probes).choice


def test_choose_join_strategy_empty_sides():
    estimate = choose_join_strategy([], [(0, 5, 1)])
    assert estimate.result_count == 0.0
    estimate = choose_join_strategy([(0, 5, 1)], [])
    assert estimate.result_count == 0.0
    assert estimate.choice in ("index-nested-loop", "sweep")


def test_choose_join_strategy_validates_bounds():
    with pytest.raises(ValueError):
        choose_join_strategy([(5, 3, 1)], [(0, 5, 1)])
    with pytest.raises(ValueError):
        choose_join_strategy([(0, 5, 1)], [(5, 3, 1)])


def test_bound_summary_validation():
    with pytest.raises(ValueError, match="buckets"):
        BoundSummary([], [], buckets=1)
    with pytest.raises(ValueError, match="equal lengths"):
        BoundSummary([1], [], buckets=4)


# ----------------------------------------------------------------------
# predicate selectivity (Section 4.5 meets the Section 5 cost model)
# ----------------------------------------------------------------------
def test_relation_count_prefix_masses_track_exact_counts(modelled_tree):
    """before/after are CDF prefix masses: near-exact at histogram
    resolution on a generated workload."""
    workload, _tree, model = modelled_tree
    records = workload.records
    n = len(records)
    for lower, upper in [(50_000, 60_000), (200_000, 400_000),
                         (700_000, 700_500)]:
        exact_before = sum(1 for s, e, _ in records if e < lower)
        exact_after = sum(1 for s, e, _ in records if s > upper)
        est_before = model.summary.relation_count("before", lower, upper)
        est_after = model.summary.relation_count("after", lower, upper)
        assert est_before == pytest.approx(exact_before, abs=0.03 * n)
        assert est_after == pytest.approx(exact_after, abs=0.03 * n)


def test_relation_count_containment_clamped_by_candidates(modelled_tree):
    """Containment/overlap estimates never exceed their candidate sets."""
    _workload, _tree, model = modelled_tree
    summary = model.summary
    for lower, upper in [(100_000, 130_000), (0, 1_000_000)]:
        assert summary.relation_count("during", lower, upper) <= \
            summary.intersecting(lower, upper)
        assert summary.relation_count("contains", lower, upper) <= \
            summary.intersecting(lower, lower)
        assert summary.relation_count("overlaps", lower, upper) <= \
            summary.intersecting(lower, lower)
        assert summary.relation_count("overlapped_by", lower, upper) <= \
            summary.intersecting(upper, upper)


def test_relation_count_covers_every_predicate(modelled_tree):
    _workload, _tree, model = modelled_tree
    from repro.core.predicates import PREDICATES

    for name in PREDICATES:
        value = model.summary.relation_count(name, 100_000, 130_000)
        assert 0.0 <= value <= model.summary.count, name
    with pytest.raises(ValueError, match="unknown relation"):
        model.summary.relation_count("sideways", 0, 1)


def test_estimate_query_intersects_reduces_to_estimate(modelled_tree):
    _workload, _tree, model = modelled_tree
    via_pred = model.estimate_query("intersects", 100_000, 140_000)
    direct = model.estimate(100_000, 140_000)
    assert via_pred == direct


def test_estimate_query_prices_relational_predicates(modelled_tree):
    """query('during', ...) is priced: candidate scan + refinement fetch."""
    workload, tree, model = modelled_tree
    records = workload.records
    estimate = model.estimate_query("during", 100_000, 160_000)
    exact = sum(1 for s, e, _ in records if 100_000 < s and e < 160_000)
    n = len(records)
    assert estimate.result_count == pytest.approx(exact, abs=0.05 * n)
    assert estimate.logical_reads > 0
    assert estimate.physical_reads > 0
    # The candidate range of 'before' spans a data-space prefix, so its
    # plan must be priced far above an equality-pinning relation's.
    wide = model.estimate_query("before", 900_000, 901_000)
    narrow = model.estimate_query("equals", 100_000, 102_000)
    assert wide.logical_reads > narrow.logical_reads
    # An empty candidate range prices to zero I/O.
    empty = model.estimate_query("before", 0, 10)
    assert empty.logical_reads == 0.0 and empty.result_count == 0.0


def test_predicate_join_estimates_track_truth():
    """The convolved predicate pair estimates land near the oracle for
    the prefix-mass relations and stay sane for the rest."""
    from repro.core.join import NestedLoopJoin

    workload = join_workload(120, 3000, seed=7)
    outer, inner = workload.outer.records, workload.inner.records
    for pred in ("before", "after"):
        estimate = choose_join_strategy(outer, inner, predicate=pred)
        truth = len(NestedLoopJoin(predicate=pred).pairs(outer, inner))
        assert estimate.result_count == pytest.approx(
            truth, rel=0.1, abs=0.02 * len(outer) * len(inner)
        ), pred
    for pred in ("during", "overlaps", "meets", "equals"):
        estimate = choose_join_strategy(outer, inner, predicate=pred)
        assert 0.0 <= estimate.result_count <= len(outer) * len(inner)
        assert estimate.index.physical_reads > 0
        assert estimate.sweep.physical_reads > 0


def test_predicate_join_decisions_pinned_regimes():
    """Few probes with narrow candidates -> index; bulk disjoint
    relations over a large inner side -> sweep."""
    few = join_workload(5, 8000, seed=2)
    estimate = choose_join_strategy(
        few.outer.records, few.inner.records, predicate="during")
    assert estimate.choice == "index-nested-loop"
    many = join_workload(320, 4000, seed=2)
    estimate = choose_join_strategy(
        many.outer.records, many.inner.records, predicate="before")
    assert estimate.choice == "sweep"


def test_tree_model_and_engine_free_predicate_planner_agree(modelled_tree):
    workload, _tree, model = modelled_tree
    inner = workload.records
    probes = join_workload(40, 10, seed=5).outer.records
    for pred in ("before", "during", "meets"):
        via_tree = model.estimate_join(probes, predicate=pred)
        via_records = choose_join_strategy(probes, inner, predicate=pred)
        assert via_tree.choice == via_records.choice, pred
