"""Tests for the optimizer cost model (paper Section 5)."""

import pytest

from repro.core import RITree, RITreeCostModel
from repro.workloads import d1, range_queries


@pytest.fixture(scope="module")
def modelled_tree():
    workload = d1(10_000, 2000, seed=3)
    tree = RITree()
    tree.bulk_load(workload.records)
    model = RITreeCostModel(tree)
    return workload, tree, model


def test_validation():
    tree = RITree()
    with pytest.raises(ValueError):
        RITreeCostModel(tree, buckets=1)
    with pytest.raises(ValueError):
        RITreeCostModel(tree, cache_residency=1.5)


def test_empty_tree_estimates_zero():
    model = RITreeCostModel(RITree())
    assert model.estimate_result_count(0, 100) == 0.0
    estimate = model.estimate(0, 100)
    assert estimate.result_count == 0.0
    assert estimate.transient_entries == 0


def test_result_estimates_track_reality(modelled_tree):
    """Histogram estimates land within 30% + 20 of the true counts."""
    workload, tree, model = modelled_tree
    for selectivity in (0.005, 0.01, 0.03):
        for lower, upper in range_queries(workload, selectivity, 15, seed=7):
            true_count = len(tree.intersection(lower, upper))
            estimated = model.estimate_result_count(lower, upper)
            assert abs(estimated - true_count) <= 0.3 * true_count + 20, (
                selectivity, lower, upper, estimated, true_count)


def test_estimates_are_monotone_in_query_width(modelled_tree):
    _, __, model = modelled_tree
    narrow = model.estimate_result_count(500_000, 510_000)
    wide = model.estimate_result_count(480_000, 540_000)
    assert wide >= narrow


def test_io_prediction_within_factor_of_measured(modelled_tree):
    """Predicted physical I/O stays within 4x of the measured average."""
    workload, tree, model = modelled_tree
    queries = range_queries(workload, 0.01, 20, seed=9)
    tree.db.clear_cache()
    with tree.db.measure() as delta:
        for lower, upper in queries:
            tree.intersection(lower, upper)
    measured = delta.physical_reads / len(queries)
    predicted = sum(model.estimate(lower, upper).physical_reads
                    for lower, upper in queries) / len(queries)
    assert predicted <= 4 * max(measured, 1)
    assert measured <= 4 * max(predicted, 1)


def test_plan_choice_against_full_scan(modelled_tree):
    """Selective queries pick the index; the everything-query may not."""
    workload, tree, model = modelled_tree
    selective = model.estimate(100, 200)
    assert selective.cheaper_than_full_scan(model.table_blocks)
    everything = model.estimate(0, 2 ** 20 - 1)
    assert everything.result_count > 0.9 * workload.n


def test_refresh_after_updates():
    tree = RITree()
    for i in range(200):
        tree.insert(i * 10, i * 10 + 5, i)
    model = RITreeCostModel(tree, buckets=16)
    before = model.estimate_result_count(0, 2000)
    for i in range(200, 400):
        tree.insert(i * 10, i * 10 + 5, i)
    model.refresh()
    after_refresh = model.estimate_result_count(0, 4000)
    assert after_refresh > before


def test_transient_entries_exact(modelled_tree):
    workload, tree, model = modelled_tree
    estimate = model.estimate(1000, 50_000)
    assert estimate.transient_entries == \
        tree.query_nodes(1000, 50_000).total_entries
    assert estimate.index_probes == estimate.transient_entries


def test_selectivity_field(modelled_tree):
    workload, _, model = modelled_tree
    estimate = model.estimate(0, 2 ** 20 - 1)
    assert 0.9 <= estimate.selectivity <= 1.0
