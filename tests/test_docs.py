"""The documentation lints of :mod:`repro.docscheck`, run as a test.

The same checks CI's docs-check job performs: every relative link in
``docs/`` and ``README.md`` resolves, and every benchmark script has an
entry in ``docs/benchmarks.md``.
"""

import pathlib

from repro import docscheck

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_docs_tree_exists():
    assert (ROOT / "docs" / "architecture.md").is_file()
    assert (ROOT / "docs" / "writing-a-backend.md").is_file()
    assert (ROOT / "docs" / "benchmarks.md").is_file()


def test_relative_links_resolve():
    assert docscheck.check_links(ROOT) == []


def test_every_benchmark_is_documented():
    assert docscheck.check_benchmarks_listed(ROOT) == []


def test_checker_reports_problems(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "index.md").write_text("[dead](missing.md) [ok](index.md)")
    (tmp_path / "benchmarks").mkdir()
    (tmp_path / "benchmarks" / "bench_orphan.py").write_text("")
    problems = docscheck.run(tmp_path)
    assert any("broken link -> missing.md" in p for p in problems)
    assert any("docs/benchmarks.md does not exist" in p for p in problems)
    (docs / "benchmarks.md").write_text("nothing here")
    problems = docscheck.run(tmp_path)
    assert any("bench_orphan.py" in p for p in problems)


def test_cli_exit_status(tmp_path, capsys):
    assert docscheck.main([str(ROOT)]) == 0
    assert docscheck.main([str(tmp_path)]) == 1
    out = capsys.readouterr()
    assert "docs check OK" in out.out
    assert "no docs/ directory" in out.err
