"""Cross-module integration tests.

Each test exercises a realistic end-to-end flow that touches several
subsystems at once -- the scenarios a downstream adopter would run.
"""

import random

from repro.core import (
    RITree,
    RITreeCostModel,
    StringIntervalTree,
    TemporalRITree,
    topology,
)
from repro.engine import Database
from repro.methods import BruteForceIntervals
from repro.sql import SQLRITree
from repro.workloads import d2, d4, range_queries


def test_temporal_plus_topology_flow():
    """A valid-time table queried with Allen relations as time advances."""
    table = TemporalRITree(now=100)
    table.insert(0, 50, 1)
    table.insert_until_now(30, 2)
    table.insert_infinite(60, 3)
    # `during` the period [20, 200]: interval 2's effective upper is 100.
    assert topology.during(table, 20, 200) == [2]
    table.advance_to(300)
    # Now interval 2 spans [30, 300], no longer strictly inside [20, 200];
    # both it and the open-ended interval 3 overlap the period from the
    # right instead.
    assert topology.during(table, 20, 200) == []
    assert sorted(topology.overlapped_by(table, 20, 200)) == [2, 3]


def test_workload_to_ritree_to_costmodel_pipeline():
    """The full benchmark pipeline on one D4 workload, with the optimizer
    model agreeing with measured selectivities."""
    workload = d4(5000, 2000, seed=11)
    tree = RITree()
    tree.bulk_load(workload.records)
    model = RITreeCostModel(tree)
    queries = range_queries(workload, 0.01, 10, seed=5)
    for lower, upper in queries:
        measured = len(tree.intersection(lower, upper))
        estimated = model.estimate_result_count(lower, upper)
        assert abs(estimated - measured) <= 0.4 * measured + 25


def test_engine_and_sql_backends_on_same_workload():
    workload = d2(2000, 1500, seed=9)
    engine_tree = RITree()
    engine_tree.bulk_load(workload.records)
    sql_tree = SQLRITree()
    sql_tree.bulk_load(workload.records)
    for lower, upper in range_queries(workload, 0.02, 15, seed=2):
        assert sorted(engine_tree.intersection(lower, upper)) == \
            sorted(sql_tree.intersection(lower, upper))


def test_mixed_dynamic_workload_long_run():
    """A long interleaving of inserts, deletes and queries stays correct
    and keeps both indexes structurally sound."""
    rng = random.Random(77)
    tree = RITree()
    brute = BruteForceIntervals()
    alive: dict[int, tuple[int, int]] = {}
    next_id = 0
    for step in range(4000):
        action = rng.random()
        if action < 0.5 or not alive:
            lower = rng.randrange(-10_000, 10_000)
            upper = lower + int(rng.expovariate(1 / 300))
            tree.insert(lower, upper, next_id)
            brute.insert(lower, upper, next_id)
            alive[next_id] = (lower, upper)
            next_id += 1
        elif action < 0.75:
            victim = rng.choice(sorted(alive))
            lower, upper = alive.pop(victim)
            tree.delete(lower, upper, victim)
            brute.delete(lower, upper, victim)
        else:
            lower = rng.randrange(-11_000, 11_000)
            upper = lower + rng.randrange(0, 2000)
            assert sorted(tree.intersection(lower, upper)) == \
                sorted(brute.intersection(lower, upper))
    for index in tree.table.indexes.values():
        index.tree.check_invariants()


def test_multiple_structures_share_one_database():
    """Catalog isolation: an RI-tree, a string tree and a plain table
    coexist in one engine instance."""
    db = Database()
    tree = RITree(db, name="Intervals")
    strings = StringIntervalTree(db, name="Names")
    extra = db.create_table("Audit", ["ts", "what"])
    tree.insert(1, 10, 1)
    strings.insert("alpha", "omega", 7)
    extra.insert((123, 1))
    assert tree.intersection(5, 6) == [1]
    assert strings.stab("delta") == [7]
    assert extra.row_count == 1


def test_io_accounting_is_consistent_across_structures():
    """physical <= logical holds for any mix of operations."""
    db = Database(block_size=512, cache_blocks=16)
    tree = RITree(db)
    for i in range(2000):
        tree.insert(i * 3, i * 3 + 10, i)
    for k in range(50):
        tree.intersection(k * 100, k * 100 + 500)
    assert db.stats.physical_reads <= db.stats.logical_reads
    db.flush()
    assert db.blocks_in_use > 0
