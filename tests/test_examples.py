"""Every example script must run to completion and print OK."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_enough_scripts():
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=240)
    assert completed.returncode == 0, completed.stderr
    assert "OK" in completed.stdout
