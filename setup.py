"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` on offline machines whose setuptools
cannot build PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
